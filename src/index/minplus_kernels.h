#ifndef IFLS_INDEX_MINPLUS_KERNELS_H_
#define IFLS_INDEX_MINPLUS_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace ifls {
namespace kernels {

/// Every IFLS objective bottoms out in min-plus reductions over VIP-tree
/// door matrices: min_k (src[k] + M[k][j] + dst[j]) and friends, executed
/// millions of times per workload directly on the arena-resident matrix
/// spans. This family implements those reductions as blocked, contiguous
/// kernels with two interchangeable backends:
///
///  * a portable scalar reference (always compiled, always available), and
///  * an AVX2 implementation (compiled per-function with
///    __attribute__((target("avx2"))) when IFLS_KERNEL_SIMD is on, selected
///    at runtime only if the CPU reports AVX2).
///
/// Bit-identity contract: both backends produce bit-identical doubles. The
/// candidate terms are the exact same IEEE expressions — left-associated
/// sums like (a[i] + m) + b[j], no FMA contraction, no reassociation — and
/// the reduction operator `min` always returns one of its operands, so the
/// reduction order (scalar loop vs 4-lane tree) cannot change a single bit.
/// Argmin kernels additionally pin the tie-break: lowest index attaining
/// the minimal sum wins, matching the reference `cand < best` loops.
/// tests/minplus_kernels_test.cc locks both properties in under ASan.

enum class KernelMode {
  kAuto = 0,    // env IFLS_KERNELS=scalar|simd, else best available
  kScalar = 1,  // portable reference
  kSimd = 2,    // AVX2 (falls back to scalar when unavailable)
};

/// True when the AVX2 backend is compiled in AND this CPU supports it.
bool SimdAvailable();

/// Selects the dispatch table. kAuto re-reads the IFLS_KERNELS environment
/// override, then picks the best available backend. Thread-safe (atomic
/// pointer swap); in-flight kernel calls finish on the table they started
/// with. Tests use this to force both paths on one machine.
void SetKernelMode(KernelMode mode);

/// The backend calls currently dispatch to: kScalar or kSimd (never kAuto).
KernelMode ActiveKernelMode();

/// "scalar" or "avx2" — for bench reports and logs.
const char* ActiveKernelName();

// ---------------------------------------------------------------------------
// Kernels. All matrices are row-major with a fixed row stride; `rows`/`cols`
// are int32 index lists selecting matrix rows/columns (the arena layout's
// access-door index maps are exactly that). Empty inputs reduce to
// +infinity / are no-ops.
// ---------------------------------------------------------------------------

/// Row+matrix+col join (the DoorToDoor LCA composition):
///   min over i,j of (a[i] + m[rows[i]*stride + cols[j]]) + b[j].
double MinPlusJoin(const double* a, const std::int32_t* rows, std::size_t nr,
                   const double* b, const std::int32_t* cols, std::size_t nc,
                   const double* m, std::size_t stride);

/// Fold distances through a matrix (IP-mode chain composition):
///   out[j] = min over i of a[i] + m[rows[i]*stride + cols[j]].
void MinPlusCompose(const double* a, const std::int32_t* rows, std::size_t nr,
                    const std::int32_t* cols, std::size_t nc, const double* m,
                    std::size_t stride, double* out);

/// Scalar-source gather reduce: min over j of s + row[idx[j]].
double MinPlusGather(double s, const double* row, const std::int32_t* idx,
                     std::size_t n);

/// Scalar-source gather join: min over j of (s + row[idx[j]]) + b[j].
double MinPlusGatherAdd(double s, const double* row, const std::int32_t* idx,
                        const double* b, std::size_t n);

/// Batched pairwise reduce (many-clients-one-candidate):
///   min over k of a[k] + b[k].
double MinPlusPairwise(const double* a, const double* b, std::size_t n);

/// First-hop extraction: the lowest index k attaining
///   min over k of s + row[k].
/// Precondition: n > 0. Ties resolve to the lowest index, matching the
/// reference `cand < best` scan.
std::size_t MinPlusArgmin(double s, const double* row, std::size_t n);

/// out[i] = row[idx[i]] (row extraction by access-door index map).
void GatherCells(const double* row, const std::int32_t* idx, std::size_t n,
                 double* out);

}  // namespace kernels
}  // namespace ifls

#endif  // IFLS_INDEX_MINPLUS_KERNELS_H_
