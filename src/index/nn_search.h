#ifndef IFLS_INDEX_NN_SEARCH_H_
#define IFLS_INDEX_NN_SEARCH_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/index/facility_index.h"

namespace ifls {

/// One nearest-neighbor answer: a facility partition and the exact indoor
/// distance from the query point to it.
struct NnResult {
  PartitionId facility = kInvalidPartition;
  double distance = 0.0;
};

/// Work counters for a search, aggregated into QueryStats by callers.
struct NnSearchStats {
  std::int64_t queue_pushes = 0;
  std::int64_t queue_pops = 0;
  std::int64_t distance_computations = 0;
};

/// Restricts which facility kinds a search may return.
enum class FacilityFilter : std::uint8_t { kAny, kExistingOnly, kCandidateOnly };

/// Top-down best-first nearest-facility search (the traditional VIP-tree NN
/// of Shao et al. §Queries): descend from the root with PointToNode lower
/// bounds, skipping facility-free subtrees, and settle facility partitions
/// by exact PointToPartition distance.
///
/// Returns nullopt when no facility matches the filter. `stats` may be null.
std::optional<NnResult> NearestFacility(const FacilityIndex& index,
                                        const Point& query,
                                        PartitionId query_partition,
                                        FacilityFilter filter,
                                        NnSearchStats* stats);

/// k nearest facilities in ascending distance order (fewer when the venue
/// has fewer matching facilities).
std::vector<NnResult> KNearestFacilities(const FacilityIndex& index,
                                         const Point& query,
                                         PartitionId query_partition, int k,
                                         FacilityFilter filter,
                                         NnSearchStats* stats);

/// Every facility within `radius` of the query point (ascending distance).
std::vector<NnResult> FacilitiesWithinRadius(const FacilityIndex& index,
                                             const Point& query,
                                             PartitionId query_partition,
                                             double radius,
                                             FacilityFilter filter,
                                             NnSearchStats* stats);

}  // namespace ifls

#endif  // IFLS_INDEX_NN_SEARCH_H_
