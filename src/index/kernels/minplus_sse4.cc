// SSE4.2 backend: 2-lane __m128d blocked reductions, scalar tails. SSE has
// no vector gather, so indexed reads assemble each pair with _mm_set_pd —
// still a win on pre-AVX serving hardware because the min/add reduction
// tree halves the dependent-compare chain. This translation unit is
// compiled with a per-file -msse4.2 (cmake/cpu_features.cmake) and only
// dispatched to when __builtin_cpu_supports("sse4.2") holds.
//
// Bit-identity: every candidate is the same left-associated IEEE sum as the
// scalar reference, _mm_min_pd returns one of its operands, and the
// horizontal fold compares with `<` exactly like the reference loop, so no
// reduction-order choice can change a bit (tests/minplus_kernels_test.cc).

#include <limits>

#include <smmintrin.h>

#include "src/index/kernels/kernel_table.h"

namespace ifls {
namespace kernels {
namespace internal {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Below one 2-lane block the vector main loops do no work and the
/// broadcast/horizontal-fold overhead makes this tier slower than the
/// reference, so such calls defer to the scalar table (bit-identical by
/// construction — it IS the reference).
inline const KernelTable& Scalar() { return *GetScalarKernelTable(); }

/// min over the 2 lanes, folded against `tail` (value-exact: every operand
/// is one of the candidate sums, so picking between equals is bit-neutral).
inline double HorizontalMin(__m128d acc, double tail) {
  alignas(16) double lanes[2];
  _mm_store_pd(lanes, acc);
  double best = tail;
  if (lanes[0] < best) best = lanes[0];
  if (lanes[1] < best) best = lanes[1];
  return best;
}

/// row[idx[j]], row[idx[j+1]] as a 2-lane vector.
inline __m128d Gather2(const double* row, const std::int32_t* idx) {
  return _mm_set_pd(row[idx[1]], row[idx[0]]);
}

double MinPlusJoin(const double* a, const std::int32_t* rows, std::size_t nr,
                   const double* b, const std::int32_t* cols, std::size_t nc,
                   const double* m, std::size_t stride) {
  if (nc < 2) return Scalar().min_plus_join(a, rows, nr, b, cols, nc, m, stride);
  __m128d acc = _mm_set1_pd(kInf);
  double tail_best = kInf;
  const std::size_t nc2 = nc & ~std::size_t{1};
  for (std::size_t i = 0; i < nr; ++i) {
    const double ai = a[i];
    const double* row = m + static_cast<std::size_t>(rows[i]) * stride;
    const __m128d va = _mm_set1_pd(ai);
    for (std::size_t j = 0; j < nc2; j += 2) {
      const __m128d g = Gather2(row, cols + j);
      const __m128d vb = _mm_loadu_pd(b + j);
      const __m128d cand = _mm_add_pd(_mm_add_pd(va, g), vb);
      acc = _mm_min_pd(acc, cand);
    }
    for (std::size_t j = nc2; j < nc; ++j) {
      const double cand = (ai + row[cols[j]]) + b[j];
      if (cand < tail_best) tail_best = cand;
    }
  }
  return HorizontalMin(acc, tail_best);
}

void MinPlusCompose(const double* a, const std::int32_t* rows, std::size_t nr,
                    const std::int32_t* cols, std::size_t nc, const double* m,
                    std::size_t stride, double* out) {
  if (nc < 2) return Scalar().min_plus_compose(a, rows, nr, cols, nc, m, stride, out);
  const std::size_t nc2 = nc & ~std::size_t{1};
  for (std::size_t j = 0; j < nc2; j += 2) {
    __m128d acc = _mm_set1_pd(kInf);
    for (std::size_t i = 0; i < nr; ++i) {
      const double* row = m + static_cast<std::size_t>(rows[i]) * stride;
      const __m128d g = Gather2(row, cols + j);
      const __m128d cand = _mm_add_pd(_mm_set1_pd(a[i]), g);
      acc = _mm_min_pd(acc, cand);
    }
    _mm_storeu_pd(out + j, acc);
  }
  for (std::size_t j = nc2; j < nc; ++j) {
    double best = kInf;
    for (std::size_t i = 0; i < nr; ++i) {
      const double cand =
          a[i] + m[static_cast<std::size_t>(rows[i]) * stride + cols[j]];
      if (cand < best) best = cand;
    }
    out[j] = best;
  }
}

double MinPlusGather(double s, const double* row, const std::int32_t* idx,
                     std::size_t n) {
  if (n < 2) return Scalar().min_plus_gather(s, row, idx, n);
  __m128d acc = _mm_set1_pd(kInf);
  const __m128d vs = _mm_set1_pd(s);
  const std::size_t n2 = n & ~std::size_t{1};
  for (std::size_t j = 0; j < n2; j += 2) {
    acc = _mm_min_pd(acc, _mm_add_pd(vs, Gather2(row, idx + j)));
  }
  double tail_best = kInf;
  for (std::size_t j = n2; j < n; ++j) {
    const double cand = s + row[idx[j]];
    if (cand < tail_best) tail_best = cand;
  }
  return HorizontalMin(acc, tail_best);
}

double MinPlusGatherAdd(double s, const double* row, const std::int32_t* idx,
                        const double* b, std::size_t n) {
  if (n < 2) return Scalar().min_plus_gather_add(s, row, idx, b, n);
  __m128d acc = _mm_set1_pd(kInf);
  const __m128d vs = _mm_set1_pd(s);
  const std::size_t n2 = n & ~std::size_t{1};
  for (std::size_t j = 0; j < n2; j += 2) {
    const __m128d g = Gather2(row, idx + j);
    const __m128d vb = _mm_loadu_pd(b + j);
    acc = _mm_min_pd(acc, _mm_add_pd(_mm_add_pd(vs, g), vb));
  }
  double tail_best = kInf;
  for (std::size_t j = n2; j < n; ++j) {
    const double cand = (s + row[idx[j]]) + b[j];
    if (cand < tail_best) tail_best = cand;
  }
  return HorizontalMin(acc, tail_best);
}

double MinPlusPairwise(const double* a, const double* b, std::size_t n) {
  if (n < 2) return Scalar().min_plus_pairwise(a, b, n);
  __m128d acc = _mm_set1_pd(kInf);
  const std::size_t n2 = n & ~std::size_t{1};
  for (std::size_t k = 0; k < n2; k += 2) {
    const __m128d cand = _mm_add_pd(_mm_loadu_pd(a + k), _mm_loadu_pd(b + k));
    acc = _mm_min_pd(acc, cand);
  }
  double tail_best = kInf;
  for (std::size_t k = n2; k < n; ++k) {
    const double cand = a[k] + b[k];
    if (cand < tail_best) tail_best = cand;
  }
  return HorizontalMin(acc, tail_best);
}

/// Two passes: a vectorized min over the sums, then a scalar scan for the
/// first index attaining it — trivially reproduces the reference tie-break.
std::size_t MinPlusArgmin(double s, const double* row, std::size_t n) {
  if (n < 2) return Scalar().min_plus_argmin(s, row, n);
  __m128d acc = _mm_set1_pd(kInf);
  const __m128d vs = _mm_set1_pd(s);
  const std::size_t n2 = n & ~std::size_t{1};
  for (std::size_t k = 0; k < n2; k += 2) {
    acc = _mm_min_pd(acc, _mm_add_pd(vs, _mm_loadu_pd(row + k)));
  }
  double best = kInf;
  for (std::size_t k = n2; k < n; ++k) {
    const double cand = s + row[k];
    if (cand < best) best = cand;
  }
  best = HorizontalMin(acc, best);
  for (std::size_t k = 0; k < n; ++k) {
    if (s + row[k] == best) return k;
  }
  // best == +inf with every sum +inf (or NaN inputs, which the distance
  // arrays never contain): the reference scan returns index 0.
  return 0;
}

void GatherCells(const double* row, const std::int32_t* idx, std::size_t n,
                 double* out) {
  if (n < 2) return Scalar().gather_cells(row, idx, n, out);
  const std::size_t n2 = n & ~std::size_t{1};
  for (std::size_t i = 0; i < n2; i += 2) {
    _mm_storeu_pd(out + i, Gather2(row, idx + i));
  }
  for (std::size_t i = n2; i < n; ++i) out[i] = row[idx[i]];
}

constexpr KernelTable kTable = {
    KernelTier::kSse4, "sse4",           MinPlusJoin, MinPlusCompose,
    MinPlusGather,     MinPlusGatherAdd, MinPlusPairwise,
    MinPlusArgmin,     GatherCells,
};

}  // namespace

const KernelTable* GetSse4KernelTable() { return &kTable; }

}  // namespace internal
}  // namespace kernels
}  // namespace ifls
