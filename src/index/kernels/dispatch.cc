// Runtime dispatch for the min-plus kernel tiers: one immutable function
// table per compiled-in backend (kernel_table.h), an atomic pointer to the
// active one, and a choose-best ladder keyed on runtime cpuid. Resolution
// order at first use:
//
//   1. IFLS_KERNELS=scalar|sse4|avx2|avx512 — explicit pin; unknown names
//      and tiers this build/CPU cannot run are typed errors (logged here,
//      returned as Status from ApplyKernelEnvOverride / PinKernelTier),
//      never a silent fallback;
//   2. otherwise the highest tier that is both compiled in
//      (IFLS_HAVE_<TIER>, cmake/cpu_features.cmake) and reported by
//      __builtin_cpu_supports.
//
// The selected backend is logged once at startup, published as the
// ifls_kernel_backend info metric (one series per compiled tier, active
// tier = 1) and stamped into the trace exporter's metadata block; the bench
// envelope (src/benchlib/json_report) reads ActiveKernelName() directly.

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string>

#include "src/common/logging.h"
#include "src/common/metrics_registry.h"
#include "src/common/trace.h"
#include "src/index/kernels/kernel_table.h"
#include "src/index/minplus_kernels.h"

namespace ifls {
namespace kernels {
namespace {

using internal::KernelTable;

const char* const kTierNames[kNumKernelTiers] = {"scalar", "sse4", "avx2",
                                                 "avx512"};

/// The tier's table when its translation unit was compiled in, else null.
const KernelTable* CompiledTable(KernelTier tier) {
  switch (tier) {
    case KernelTier::kScalar:
      return internal::GetScalarKernelTable();
    case KernelTier::kSse4:
#if defined(IFLS_HAVE_SSE4)
      return internal::GetSse4KernelTable();
#else
      return nullptr;
#endif
    case KernelTier::kAvx2:
#if defined(IFLS_HAVE_AVX2)
      return internal::GetAvx2KernelTable();
#else
      return nullptr;
#endif
    case KernelTier::kAvx512:
#if defined(IFLS_HAVE_AVX512F)
      return internal::GetAvx512KernelTable();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

bool CpuReportsTier(KernelTier tier) {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  switch (tier) {
    case KernelTier::kScalar:
      return true;
    case KernelTier::kSse4:
      return __builtin_cpu_supports("sse4.2") != 0;
    case KernelTier::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case KernelTier::kAvx512:
      return __builtin_cpu_supports("avx512f") != 0;
  }
  return false;
#else
  return tier == KernelTier::kScalar;
#endif
}

/// Comma-joined names of the compiled-in tiers, for the startup log line.
std::string CompiledTierList() {
  std::string out;
  for (int t = 0; t < kNumKernelTiers; ++t) {
    if (CompiledTable(static_cast<KernelTier>(t)) == nullptr) continue;
    if (!out.empty()) out += ",";
    out += kTierNames[t];
  }
  return out;
}

std::atomic<const KernelTable*>& ActiveTableSlot() {
  static std::atomic<const KernelTable*> slot{nullptr};
  return slot;
}

/// Swaps the active table and re-publishes the backend everywhere it is
/// surfaced: the ifls_kernel_backend info metric (every compiled tier gets
/// a series; exactly the active one reads 1) and the trace exporter's
/// metadata block, so Chrome traces and Prometheus scrapes both say which
/// backend produced the work they describe.
void InstallTable(const KernelTable* table) {
  ActiveTableSlot().store(table, std::memory_order_release);
  MetricsRegistry& registry = MetricsRegistry::Global();
  for (int t = 0; t < kNumKernelTiers; ++t) {
    const KernelTier tier = static_cast<KernelTier>(t);
    if (CompiledTable(tier) == nullptr) continue;
    registry
        .GetGauge("ifls_kernel_backend",
                  std::string("tier=\"") + kTierNames[t] + "\"")
        ->Set(tier == table->tier ? 1.0 : 0.0);
  }
  TraceRecorder::Global().SetMetadata("kernel_backend", table->name);
}

/// Env resolution shared by the lazy init and ApplyKernelEnvOverride.
/// Returns OK with *applied=false when IFLS_KERNELS is unset.
Status ResolveEnvOverride(bool* applied) {
  *applied = false;
  const char* env = std::getenv("IFLS_KERNELS");
  if (env == nullptr || *env == '\0') return Status::OK();
  Result<KernelTier> tier = ParseKernelTier(env);
  if (!tier.ok()) return tier.status();
  Status pinned = PinKernelTier(*tier);
  if (!pinned.ok()) {
    return Status(pinned.code(),
                  "IFLS_KERNELS=" + std::string(env) + ": " + pinned.message());
  }
  *applied = true;
  return Status::OK();
}

/// One-time lazy resolution, shared by every public entry point. The
/// resolved tier is logged exactly once; an invalid IFLS_KERNELS value is
/// loud (kError log) and auto dispatch proceeds on the best tier so the
/// process stays serviceable — callers that want the typed error fatal
/// call ApplyKernelEnvOverride() themselves.
void EnsureInitialized() {
  static std::once_flag once;
  std::call_once(once, [] {
    bool applied = false;
    const Status env = ResolveEnvOverride(&applied);
    if (!env.ok()) {
      IFLS_LOG(ERROR) << "invalid kernel tier override: " << env.ToString()
                       << "; falling back to auto dispatch";
    }
    if (!applied) InstallTable(CompiledTable(BestKernelTier()));
    IFLS_LOG(INFO) << "min-plus kernel dispatch: tier="
                    << ActiveTableSlot().load(std::memory_order_acquire)->name
                    << (applied ? " (IFLS_KERNELS pin)" : " (auto)")
                    << ", compiled tiers: " << CompiledTierList();
  });
}

const KernelTable& Active() {
  const KernelTable* table =
      ActiveTableSlot().load(std::memory_order_acquire);
  if (table == nullptr) {
    EnsureInitialized();
    table = ActiveTableSlot().load(std::memory_order_acquire);
  }
  return *table;
}

}  // namespace

const char* KernelTierName(KernelTier tier) {
  const int t = static_cast<int>(tier);
  IFLS_CHECK(t >= 0 && t < kNumKernelTiers) << "bad KernelTier " << t;
  return kTierNames[t];
}

Result<KernelTier> ParseKernelTier(const std::string& name) {
  for (int t = 0; t < kNumKernelTiers; ++t) {
    if (name == kTierNames[t]) return static_cast<KernelTier>(t);
  }
  if (name == "avx512f") return KernelTier::kAvx512;
  if (name == "simd") {
    // Legacy two-backend pin: the best SIMD tier this machine can run. A
    // scalar-only build/CPU cannot honor a SIMD request.
    const KernelTier best = BestKernelTier();
    if (best == KernelTier::kScalar) {
      return Status::FailedPrecondition(
          "kernel tier 'simd' (legacy alias): no SIMD tier is compiled in "
          "and supported on this CPU");
    }
    return best;
  }
  return Status::InvalidArgument(
      "unknown kernel tier '" + name +
      "' (valid: scalar, sse4, avx2, avx512; legacy alias: simd)");
}

bool KernelTierCompiled(KernelTier tier) {
  return CompiledTable(tier) != nullptr;
}

bool KernelTierSupported(KernelTier tier) {
  return CompiledTable(tier) != nullptr && CpuReportsTier(tier);
}

KernelTier BestKernelTier() {
  for (int t = kNumKernelTiers - 1; t > 0; --t) {
    const KernelTier tier = static_cast<KernelTier>(t);
    if (KernelTierSupported(tier)) return tier;
  }
  return KernelTier::kScalar;
}

Status PinKernelTier(KernelTier tier) {
  const KernelTable* table = CompiledTable(tier);
  if (table == nullptr) {
    return Status::FailedPrecondition(
        "kernel tier '" + std::string(KernelTierName(tier)) +
        "' is not compiled into this binary (see cmake/cpu_features.cmake; "
        "compiled tiers: " + CompiledTierList() + ")");
  }
  if (!CpuReportsTier(tier)) {
    return Status::FailedPrecondition(
        "kernel tier '" + std::string(KernelTierName(tier)) +
        "' is compiled in but this CPU does not report the feature");
  }
  InstallTable(table);
  return Status::OK();
}

Status ApplyKernelEnvOverride() {
  bool applied = false;
  return ResolveEnvOverride(&applied);
}

void ResetKernelTierAuto() {
  bool applied = false;
  const Status env = ResolveEnvOverride(&applied);
  if (!env.ok()) {
    IFLS_LOG(ERROR) << "invalid kernel tier override: " << env.ToString()
                     << "; using best supported tier";
  }
  if (!applied) InstallTable(CompiledTable(BestKernelTier()));
}

KernelTier ActiveKernelTier() { return Active().tier; }

const char* ActiveKernelName() { return Active().name; }

double MinPlusJoin(const double* a, const std::int32_t* rows, std::size_t nr,
                   const double* b, const std::int32_t* cols, std::size_t nc,
                   const double* m, std::size_t stride) {
  return Active().min_plus_join(a, rows, nr, b, cols, nc, m, stride);
}

void MinPlusCompose(const double* a, const std::int32_t* rows, std::size_t nr,
                    const std::int32_t* cols, std::size_t nc, const double* m,
                    std::size_t stride, double* out) {
  Active().min_plus_compose(a, rows, nr, cols, nc, m, stride, out);
}

double MinPlusGather(double s, const double* row, const std::int32_t* idx,
                     std::size_t n) {
  return Active().min_plus_gather(s, row, idx, n);
}

double MinPlusGatherAdd(double s, const double* row, const std::int32_t* idx,
                        const double* b, std::size_t n) {
  return Active().min_plus_gather_add(s, row, idx, b, n);
}

double MinPlusPairwise(const double* a, const double* b, std::size_t n) {
  return Active().min_plus_pairwise(a, b, n);
}

std::size_t MinPlusArgmin(double s, const double* row, std::size_t n) {
  return Active().min_plus_argmin(s, row, n);
}

void GatherCells(const double* row, const std::int32_t* idx, std::size_t n,
                 double* out) {
  Active().gather_cells(row, idx, n, out);
}

}  // namespace kernels
}  // namespace ifls
