// Portable scalar reference backend. These loops ARE the specification:
// every SIMD tier must reproduce them bit for bit (same left-associated
// sums, min picks an operand, argmin ties to the lowest index). Compiled
// with the project's baseline flags — no ISA extensions — so this table is
// runnable on any CPU the binary loads on.

#include <limits>

#include "src/index/kernels/kernel_table.h"

namespace ifls {
namespace kernels {
namespace internal {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double MinPlusJoin(const double* a, const std::int32_t* rows, std::size_t nr,
                   const double* b, const std::int32_t* cols, std::size_t nc,
                   const double* m, std::size_t stride) {
  double best = kInf;
  for (std::size_t i = 0; i < nr; ++i) {
    const double ai = a[i];
    const double* row = m + static_cast<std::size_t>(rows[i]) * stride;
    for (std::size_t j = 0; j < nc; ++j) {
      const double cand = (ai + row[cols[j]]) + b[j];
      if (cand < best) best = cand;
    }
  }
  return best;
}

void MinPlusCompose(const double* a, const std::int32_t* rows, std::size_t nr,
                    const std::int32_t* cols, std::size_t nc, const double* m,
                    std::size_t stride, double* out) {
  for (std::size_t j = 0; j < nc; ++j) out[j] = kInf;
  for (std::size_t i = 0; i < nr; ++i) {
    const double ai = a[i];
    const double* row = m + static_cast<std::size_t>(rows[i]) * stride;
    for (std::size_t j = 0; j < nc; ++j) {
      const double cand = ai + row[cols[j]];
      if (cand < out[j]) out[j] = cand;
    }
  }
}

double MinPlusGather(double s, const double* row, const std::int32_t* idx,
                     std::size_t n) {
  double best = kInf;
  for (std::size_t j = 0; j < n; ++j) {
    const double cand = s + row[idx[j]];
    if (cand < best) best = cand;
  }
  return best;
}

double MinPlusGatherAdd(double s, const double* row, const std::int32_t* idx,
                        const double* b, std::size_t n) {
  double best = kInf;
  for (std::size_t j = 0; j < n; ++j) {
    const double cand = (s + row[idx[j]]) + b[j];
    if (cand < best) best = cand;
  }
  return best;
}

double MinPlusPairwise(const double* a, const double* b, std::size_t n) {
  double best = kInf;
  for (std::size_t k = 0; k < n; ++k) {
    const double cand = a[k] + b[k];
    if (cand < best) best = cand;
  }
  return best;
}

std::size_t MinPlusArgmin(double s, const double* row, std::size_t n) {
  std::size_t best_k = 0;
  double best = s + row[0];
  for (std::size_t k = 1; k < n; ++k) {
    const double cand = s + row[k];
    if (cand < best) {
      best = cand;
      best_k = k;
    }
  }
  return best_k;
}

void GatherCells(const double* row, const std::int32_t* idx, std::size_t n,
                 double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = row[idx[i]];
}

constexpr KernelTable kTable = {
    KernelTier::kScalar, "scalar",       MinPlusJoin, MinPlusCompose,
    MinPlusGather,       MinPlusGatherAdd, MinPlusPairwise,
    MinPlusArgmin,       GatherCells,
};

}  // namespace

const KernelTable* GetScalarKernelTable() { return &kTable; }

}  // namespace internal
}  // namespace kernels
}  // namespace ifls
