// AVX-512F backend: 8-lane __m512d blocked reductions, scalar tails.
// Gathers use vgatherdpd (zmm form) over the int32 index lists exactly as
// laid out in the arenas; only the F foundation subset is required, so the
// tier lights up on every AVX-512 part from Skylake-SP onward. This
// translation unit is compiled with a per-file -mavx512f
// (cmake/cpu_features.cmake) and only dispatched to when
// __builtin_cpu_supports("avx512f") holds.
//
// Bit-identity: every candidate is the same left-associated IEEE sum as the
// scalar reference, _mm512_min_pd returns one of its operands, and the
// horizontal fold compares with `<` exactly like the reference loop, so no
// reduction-order choice can change a bit (tests/minplus_kernels_test.cc).

#include <limits>

#include <immintrin.h>

#include "src/index/kernels/kernel_table.h"

namespace ifls {
namespace kernels {
namespace internal {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Below one 8-lane block the vector main loops do no work and the
/// broadcast/horizontal-fold overhead makes this tier slower than the
/// reference, so such calls defer to the scalar table (bit-identical by
/// construction — it IS the reference).
inline const KernelTable& Scalar() { return *GetScalarKernelTable(); }

/// min over the 8 lanes, folded against `tail` (value-exact: every operand
/// is one of the candidate sums, so picking between equals is bit-neutral).
inline double HorizontalMin(__m512d acc, double tail) {
  alignas(64) double lanes[8];
  _mm512_store_pd(lanes, acc);
  double best = tail;
  for (int l = 0; l < 8; ++l) {
    if (lanes[l] < best) best = lanes[l];
  }
  return best;
}

inline __m256i LoadIdx8(const std::int32_t* idx) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx));
}

double MinPlusJoin(const double* a, const std::int32_t* rows, std::size_t nr,
                   const double* b, const std::int32_t* cols, std::size_t nc,
                   const double* m, std::size_t stride) {
  if (nc < 8) return Scalar().min_plus_join(a, rows, nr, b, cols, nc, m, stride);
  __m512d acc = _mm512_set1_pd(kInf);
  double tail_best = kInf;
  const std::size_t nc8 = nc & ~std::size_t{7};
  for (std::size_t i = 0; i < nr; ++i) {
    const double ai = a[i];
    const double* row = m + static_cast<std::size_t>(rows[i]) * stride;
    const __m512d va = _mm512_set1_pd(ai);
    for (std::size_t j = 0; j < nc8; j += 8) {
      const __m512d g = _mm512_i32gather_pd(LoadIdx8(cols + j), row, 8);
      const __m512d vb = _mm512_loadu_pd(b + j);
      const __m512d cand = _mm512_add_pd(_mm512_add_pd(va, g), vb);
      acc = _mm512_min_pd(acc, cand);
    }
    for (std::size_t j = nc8; j < nc; ++j) {
      const double cand = (ai + row[cols[j]]) + b[j];
      if (cand < tail_best) tail_best = cand;
    }
  }
  return HorizontalMin(acc, tail_best);
}

void MinPlusCompose(const double* a, const std::int32_t* rows, std::size_t nr,
                    const std::int32_t* cols, std::size_t nc, const double* m,
                    std::size_t stride, double* out) {
  if (nc < 8) return Scalar().min_plus_compose(a, rows, nr, cols, nc, m, stride, out);
  const std::size_t nc8 = nc & ~std::size_t{7};
  for (std::size_t j = 0; j < nc8; j += 8) {
    __m512d acc = _mm512_set1_pd(kInf);
    const __m256i vidx = LoadIdx8(cols + j);
    for (std::size_t i = 0; i < nr; ++i) {
      const double* row = m + static_cast<std::size_t>(rows[i]) * stride;
      const __m512d g = _mm512_i32gather_pd(vidx, row, 8);
      const __m512d cand = _mm512_add_pd(_mm512_set1_pd(a[i]), g);
      acc = _mm512_min_pd(acc, cand);
    }
    _mm512_storeu_pd(out + j, acc);
  }
  for (std::size_t j = nc8; j < nc; ++j) {
    double best = kInf;
    for (std::size_t i = 0; i < nr; ++i) {
      const double cand =
          a[i] + m[static_cast<std::size_t>(rows[i]) * stride + cols[j]];
      if (cand < best) best = cand;
    }
    out[j] = best;
  }
}

double MinPlusGather(double s, const double* row, const std::int32_t* idx,
                     std::size_t n) {
  if (n < 8) return Scalar().min_plus_gather(s, row, idx, n);
  __m512d acc = _mm512_set1_pd(kInf);
  const __m512d vs = _mm512_set1_pd(s);
  const std::size_t n8 = n & ~std::size_t{7};
  for (std::size_t j = 0; j < n8; j += 8) {
    const __m512d g = _mm512_i32gather_pd(LoadIdx8(idx + j), row, 8);
    acc = _mm512_min_pd(acc, _mm512_add_pd(vs, g));
  }
  double tail_best = kInf;
  for (std::size_t j = n8; j < n; ++j) {
    const double cand = s + row[idx[j]];
    if (cand < tail_best) tail_best = cand;
  }
  return HorizontalMin(acc, tail_best);
}

double MinPlusGatherAdd(double s, const double* row, const std::int32_t* idx,
                        const double* b, std::size_t n) {
  if (n < 8) return Scalar().min_plus_gather_add(s, row, idx, b, n);
  __m512d acc = _mm512_set1_pd(kInf);
  const __m512d vs = _mm512_set1_pd(s);
  const std::size_t n8 = n & ~std::size_t{7};
  for (std::size_t j = 0; j < n8; j += 8) {
    const __m512d g = _mm512_i32gather_pd(LoadIdx8(idx + j), row, 8);
    const __m512d vb = _mm512_loadu_pd(b + j);
    acc = _mm512_min_pd(acc, _mm512_add_pd(_mm512_add_pd(vs, g), vb));
  }
  double tail_best = kInf;
  for (std::size_t j = n8; j < n; ++j) {
    const double cand = (s + row[idx[j]]) + b[j];
    if (cand < tail_best) tail_best = cand;
  }
  return HorizontalMin(acc, tail_best);
}

double MinPlusPairwise(const double* a, const double* b, std::size_t n) {
  if (n < 8) return Scalar().min_plus_pairwise(a, b, n);
  __m512d acc = _mm512_set1_pd(kInf);
  const std::size_t n8 = n & ~std::size_t{7};
  for (std::size_t k = 0; k < n8; k += 8) {
    const __m512d cand =
        _mm512_add_pd(_mm512_loadu_pd(a + k), _mm512_loadu_pd(b + k));
    acc = _mm512_min_pd(acc, cand);
  }
  double tail_best = kInf;
  for (std::size_t k = n8; k < n; ++k) {
    const double cand = a[k] + b[k];
    if (cand < tail_best) tail_best = cand;
  }
  return HorizontalMin(acc, tail_best);
}

/// Two passes: a vectorized min over the sums, then a scalar scan for the
/// first index attaining it — trivially reproduces the reference tie-break.
std::size_t MinPlusArgmin(double s, const double* row, std::size_t n) {
  if (n < 8) return Scalar().min_plus_argmin(s, row, n);
  __m512d acc = _mm512_set1_pd(kInf);
  const __m512d vs = _mm512_set1_pd(s);
  const std::size_t n8 = n & ~std::size_t{7};
  for (std::size_t k = 0; k < n8; k += 8) {
    acc = _mm512_min_pd(acc, _mm512_add_pd(vs, _mm512_loadu_pd(row + k)));
  }
  double best = kInf;
  for (std::size_t k = n8; k < n; ++k) {
    const double cand = s + row[k];
    if (cand < best) best = cand;
  }
  best = HorizontalMin(acc, best);
  for (std::size_t k = 0; k < n; ++k) {
    if (s + row[k] == best) return k;
  }
  // best == +inf with every sum +inf (or NaN inputs, which the distance
  // arrays never contain): the reference scan returns index 0.
  return 0;
}

void GatherCells(const double* row, const std::int32_t* idx, std::size_t n,
                 double* out) {
  if (n < 8) return Scalar().gather_cells(row, idx, n, out);
  const std::size_t n8 = n & ~std::size_t{7};
  for (std::size_t i = 0; i < n8; i += 8) {
    _mm512_storeu_pd(out + i, _mm512_i32gather_pd(LoadIdx8(idx + i), row, 8));
  }
  for (std::size_t i = n8; i < n; ++i) out[i] = row[idx[i]];
}

constexpr KernelTable kTable = {
    KernelTier::kAvx512, "avx512",         MinPlusJoin, MinPlusCompose,
    MinPlusGather,       MinPlusGatherAdd, MinPlusPairwise,
    MinPlusArgmin,       GatherCells,
};

}  // namespace

const KernelTable* GetAvx512KernelTable() { return &kTable; }

}  // namespace internal
}  // namespace kernels
}  // namespace ifls
