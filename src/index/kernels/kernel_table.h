#ifndef IFLS_INDEX_KERNELS_KERNEL_TABLE_H_
#define IFLS_INDEX_KERNELS_KERNEL_TABLE_H_

#include <cstddef>
#include <cstdint>

#include "src/index/minplus_kernels.h"

namespace ifls {
namespace kernels {
namespace internal {

/// One immutable function table per ISA tier. Each tier's translation unit
/// (minplus_<tier>.cc, compiled with that tier's per-file -m<isa> flag)
/// defines exactly one of the Get*KernelTable() factories below; dispatch.cc
/// assembles the choose-best ladder from whichever factories the build
/// compiled in (the IFLS_HAVE_<TIER> guards from cmake/cpu_features.cmake).
///
/// Every entry implements the same bit-identity contract as the scalar
/// reference in minplus_scalar.cc: left-associated sums, min returns an
/// operand, argmin ties to the lowest index. See minplus_kernels.h.
struct KernelTable {
  KernelTier tier;
  const char* name;
  double (*min_plus_join)(const double*, const std::int32_t*, std::size_t,
                          const double*, const std::int32_t*, std::size_t,
                          const double*, std::size_t);
  void (*min_plus_compose)(const double*, const std::int32_t*, std::size_t,
                           const std::int32_t*, std::size_t, const double*,
                           std::size_t, double*);
  double (*min_plus_gather)(double, const double*, const std::int32_t*,
                            std::size_t);
  double (*min_plus_gather_add)(double, const double*, const std::int32_t*,
                                const double*, std::size_t);
  double (*min_plus_pairwise)(const double*, const double*, std::size_t);
  std::size_t (*min_plus_argmin)(double, const double*, std::size_t);
  void (*gather_cells)(const double*, const std::int32_t*, std::size_t,
                       double*);
};

/// Always present: the portable reference backend.
const KernelTable* GetScalarKernelTable();

#if defined(IFLS_HAVE_SSE4)
const KernelTable* GetSse4KernelTable();
#endif
#if defined(IFLS_HAVE_AVX2)
const KernelTable* GetAvx2KernelTable();
#endif
#if defined(IFLS_HAVE_AVX512F)
const KernelTable* GetAvx512KernelTable();
#endif

}  // namespace internal
}  // namespace kernels
}  // namespace ifls

#endif  // IFLS_INDEX_KERNELS_KERNEL_TABLE_H_
