#include "src/index/vip_tree_io_v3.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/endian.h"
#include "src/common/hash.h"
#include "src/common/mapped_file.h"
#include "src/index/vip_tree.h"

// Format v3: the mappable binary snapshot (layout documented in
// vip_tree_io_v3.h). Saving streams the arenas out verbatim; loading is an
// mmap plus a descriptor fixup pass — InitFromStructure replayed over
// mapped arenas, which validates the computed layout against the section
// sizes and the derived id tables against the mapped bytes, so every
// corruption mode surfaces as a proper Status.

namespace ifls {

namespace {

/// Writes `bytes` zero bytes (section padding).
bool WriteZeros(std::ofstream& os, std::uint64_t bytes) {
  static constexpr char kZeros[256] = {};
  while (bytes > 0) {
    const std::uint64_t chunk = std::min<std::uint64_t>(bytes, sizeof(kZeros));
    os.write(kZeros, static_cast<std::streamsize>(chunk));
    bytes -= chunk;
  }
  return os.good();
}

/// Validates that a section `[offset, offset + count * elem_bytes)` lies
/// inside the file and starts on a section boundary.
Status CheckSection(const char* what, std::uint64_t offset,
                    std::uint64_t count, std::uint64_t elem_bytes,
                    std::uint64_t file_bytes) {
  if (offset % kV3SectionAlignment != 0) {
    return Status::InvalidArgument(std::string("v3 snapshot: ") + what +
                                   " section is misaligned");
  }
  if (offset > file_bytes || count > (file_bytes - offset) / elem_bytes) {
    return Status::InvalidArgument(std::string("v3 snapshot: ") + what +
                                   " section extends past the end of the "
                                   "file (truncated)");
  }
  return Status::OK();
}

}  // namespace

Status VipTree::SaveV3ToFile(const std::string& path) const {
  V3Header h{};
  std::memcpy(h.magic, kV3Magic, sizeof(h.magic));
  h.version = kV3Version;
  h.header_bytes = kV3SectionAlignment;
  h.leaf_capacity = options_.leaf_capacity;
  h.internal_fanout = options_.internal_fanout;
  h.build_leaf_to_ancestor = options_.build_leaf_to_ancestor ? 1 : 0;
  h.store_first_hop = options_.store_first_hop ? 1 : 0;
  h.single_door_optimization = options_.single_door_optimization ? 1 : 0;
  h.enable_door_distance_cache = options_.enable_door_distance_cache ? 1 : 0;
  h.num_partitions = venue_->num_partitions();
  h.num_doors = venue_->num_doors();
  h.num_nodes = nodes_.size();

  std::vector<V3NodeRecord> records;
  records.reserve(nodes_.size());
  for (const VipNode& n : nodes_) {
    V3NodeRecord r;
    r.id = n.id;
    r.parent = n.parent;
    r.num_children = static_cast<std::uint32_t>(n.children.size());
    r.num_partitions = static_cast<std::uint32_t>(n.partitions.size());
    r.num_doors = static_cast<std::uint32_t>(n.doors.size());
    r.num_access_doors = static_cast<std::uint32_t>(n.access_doors.size());
    r.num_ancestors = static_cast<std::uint32_t>(n.ancestor_matrices.size());
    records.push_back(r);
  }

  h.structure_offset = kV3SectionAlignment;
  h.structure_bytes = records.size() * sizeof(V3NodeRecord);
  h.ids_offset = V3AlignUp(h.structure_offset + h.structure_bytes);
  h.ids_count = ids_.size();
  h.dist_offset = V3AlignUp(h.ids_offset + h.ids_count * sizeof(std::int32_t));
  h.dist_count = dist_.size();
  h.hops_offset = V3AlignUp(h.dist_offset + h.dist_count * sizeof(double));
  h.hops_count = hops_.size();
  h.file_bytes = h.hops_offset + h.hops_count * sizeof(DoorId);

  h.structure_checksum =
      Fnv1a64(records.data(), static_cast<std::size_t>(h.structure_bytes));
  std::uint64_t payload = Fnv1a64(ids_.data(), ids_.size() * sizeof(std::int32_t));
  payload = Fnv1a64Continue(payload, dist_.data(), dist_.size() * sizeof(double));
  payload = Fnv1a64Continue(payload, hops_.data(), hops_.size() * sizeof(DoorId));
  h.payload_checksum = payload;
  h.header_checksum = 0;
  h.header_checksum = Fnv1a64(&h, sizeof(h));

  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os.is_open()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  os.write(reinterpret_cast<const char*>(&h),
           static_cast<std::streamsize>(sizeof(h)));
  WriteZeros(os, kV3SectionAlignment - sizeof(h));
  os.write(reinterpret_cast<const char*>(records.data()),
           static_cast<std::streamsize>(h.structure_bytes));
  WriteZeros(os, h.ids_offset - (h.structure_offset + h.structure_bytes));
  os.write(reinterpret_cast<const char*>(ids_.data()),
           static_cast<std::streamsize>(h.ids_count * sizeof(std::int32_t)));
  WriteZeros(os,
             h.dist_offset - (h.ids_offset + h.ids_count * sizeof(std::int32_t)));
  os.write(reinterpret_cast<const char*>(dist_.data()),
           static_cast<std::streamsize>(h.dist_count * sizeof(double)));
  WriteZeros(os,
             h.hops_offset - (h.dist_offset + h.dist_count * sizeof(double)));
  os.write(reinterpret_cast<const char*>(hops_.data()),
           static_cast<std::streamsize>(h.hops_count * sizeof(DoorId)));
  if (!os.good()) {
    return Status::IOError("failed writing v3 snapshot '" + path + "'");
  }
  return Status::OK();
}

Result<VipTree> VipTree::LoadV3FromFile(const Venue* venue,
                                        const std::string& path) {
  if (venue == nullptr) {
    return Status::InvalidArgument("venue must not be null");
  }
  Result<MappedFile> map_result = MappedFile::Open(path);
  if (!map_result.ok()) return map_result.status();
  auto mapping =
      std::make_shared<const MappedFile>(std::move(map_result).value());

  // ---- Header validation, cheapest check first. ------------------------
  if (mapping->size() < sizeof(V3Header)) {
    return Status::InvalidArgument(
        "v3 snapshot '" + path + "' is too short for its header (short "
        "map: " + std::to_string(mapping->size()) + " bytes)");
  }
  V3Header h = LoadLE<V3Header>(mapping->data());
  if (std::memcmp(h.magic, kV3Magic, sizeof(h.magic)) != 0) {
    return Status::InvalidArgument("'" + path +
                                   "' is not an IFLS v3 snapshot (bad magic)");
  }
  if (h.version != kV3Version) {
    return Status::InvalidArgument("unsupported v3 snapshot version " +
                                   std::to_string(h.version));
  }
  if (h.header_bytes != kV3SectionAlignment) {
    return Status::InvalidArgument("v3 snapshot header size mismatch");
  }
  {
    V3Header check = h;
    check.header_checksum = 0;
    if (Fnv1a64(&check, sizeof(check)) != h.header_checksum) {
      return Status::InvalidArgument("v3 snapshot header checksum mismatch");
    }
  }
  if (h.file_bytes != mapping->size()) {
    return Status::InvalidArgument(
        "v3 snapshot short map: header declares " +
        std::to_string(h.file_bytes) + " bytes but the file holds " +
        std::to_string(mapping->size()));
  }

  // ---- Descriptor table. ----------------------------------------------
  if (h.structure_offset != kV3SectionAlignment ||
      h.structure_bytes != h.num_nodes * sizeof(V3NodeRecord) ||
      h.structure_offset + h.structure_bytes > h.file_bytes) {
    return Status::InvalidArgument(
        "v3 snapshot descriptor table is truncated or mis-sized");
  }
  const auto* records = mapping->ViewAt<V3NodeRecord>(h.structure_offset);
  if (Fnv1a64(records, static_cast<std::size_t>(h.structure_bytes)) !=
      h.structure_checksum) {
    return Status::InvalidArgument(
        "v3 snapshot descriptor table checksum mismatch");
  }

  // ---- Payload sections. ----------------------------------------------
  IFLS_RETURN_NOT_OK(CheckSection("ids", h.ids_offset, h.ids_count,
                                  sizeof(std::int32_t), h.file_bytes));
  IFLS_RETURN_NOT_OK(CheckSection("dist", h.dist_offset, h.dist_count,
                                  sizeof(double), h.file_bytes));
  IFLS_RETURN_NOT_OK(CheckSection("hops", h.hops_offset, h.hops_count,
                                  sizeof(DoorId), h.file_bytes));
  const auto* ids = mapping->ViewAt<std::int32_t>(h.ids_offset);
  const auto* dist = mapping->ViewAt<double>(h.dist_offset);
  const auto* hops = mapping->ViewAt<DoorId>(h.hops_offset);
  {
    std::uint64_t payload = Fnv1a64(
        ids, static_cast<std::size_t>(h.ids_count) * sizeof(std::int32_t));
    payload = Fnv1a64Continue(
        payload, dist, static_cast<std::size_t>(h.dist_count) * sizeof(double));
    payload = Fnv1a64Continue(
        payload, hops, static_cast<std::size_t>(h.hops_count) * sizeof(DoorId));
    if (payload != h.payload_checksum) {
      return Status::InvalidArgument("v3 snapshot payload checksum mismatch");
    }
  }

  if (h.num_partitions != venue->num_partitions() ||
      h.num_doors != venue->num_doors()) {
    return Status::InvalidArgument(
        "index was built for a different venue (partition/door counts "
        "differ)");
  }
  const bool store_first_hop = h.store_first_hop != 0;
  if (store_first_hop ? h.hops_count != h.dist_count : h.hops_count != 0) {
    return Status::InvalidArgument(
        "v3 snapshot first-hop section size contradicts the header options");
  }

  // ---- Rebuild the transient structure by slicing the mapped ids arena
  // with the record counts; the derived index maps are skipped here and
  // re-derived + verified by the fixup pass below.
  VipTreeStructure structure;
  structure.nodes.resize(static_cast<std::size_t>(h.num_nodes));
  std::uint64_t cursor = 0;
  const auto take = [&](std::uint64_t count) -> const std::int32_t* {
    if (h.ids_count - cursor < count) return nullptr;
    const std::int32_t* p = ids + cursor;
    cursor += count;
    return p;
  };
  for (std::size_t i = 0; i < h.num_nodes; ++i) {
    const V3NodeRecord& r = records[i];
    if (r.id != static_cast<std::int32_t>(i)) {
      return Status::InvalidArgument(
          "v3 snapshot node record ids must match their positions");
    }
    VipTreeStructure::Node& n = structure.nodes[i];
    n.id = r.id;
    n.parent = r.parent;
    const std::int32_t* children = take(r.num_children);
    const std::int32_t* partitions = take(r.num_partitions);
    const std::int32_t* doors = take(r.num_doors);
    const std::int32_t* access = take(r.num_access_doors);
    // Derived tables, laid out right after: access_door_idx, the
    // child-access prefix table, and the flattened child-access indices.
    std::uint64_t child_flat = 0;
    bool child_ok = true;
    for (std::uint32_t c = 0; c < r.num_children && children != nullptr; ++c) {
      const std::int32_t ch = children[c];
      if (ch < 0 || static_cast<std::uint64_t>(ch) >= h.num_nodes) {
        child_ok = false;
        break;
      }
      child_flat += records[static_cast<std::size_t>(ch)].num_access_doors;
    }
    if (!child_ok) {
      return Status::InvalidArgument(
          "v3 snapshot child id out of range in the descriptor table");
    }
    const bool skipped =
        take(r.num_access_doors) != nullptr &&
        take(r.num_children > 0 ? r.num_children + 1 : 0) != nullptr &&
        take(child_flat) != nullptr;
    if (children == nullptr || partitions == nullptr || doors == nullptr ||
        access == nullptr || !skipped) {
      return Status::InvalidArgument(
          "v3 snapshot ids section is too small for its descriptor table "
          "(truncated)");
    }
    n.children.assign(children, children + r.num_children);
    n.partitions.assign(partitions, partitions + r.num_partitions);
    n.doors.assign(doors, doors + r.num_doors);
    n.access_doors.assign(access, access + r.num_access_doors);
  }

  // ---- Descriptor fixup pass: adopt the mapped sections as read-only
  // arenas and replay the layout. Reserve validates the exact totals,
  // AppendRange verifies the derived id tables bit-for-bit against the
  // mapped bytes, and the matrix slots land exactly on the mapped payload.
  VipTree tree;
  tree.venue_ = venue;
  tree.options_.leaf_capacity = h.leaf_capacity;
  tree.options_.internal_fanout = h.internal_fanout;
  tree.options_.build_leaf_to_ancestor = h.build_leaf_to_ancestor != 0;
  tree.options_.store_first_hop = store_first_hop;
  tree.options_.single_door_optimization = h.single_door_optimization != 0;
  tree.options_.enable_door_distance_cache =
      h.enable_door_distance_cache != 0;
  tree.ids_.AdoptMapped(ids, static_cast<std::size_t>(h.ids_count));
  tree.dist_.AdoptMapped(dist, static_cast<std::size_t>(h.dist_count));
  if (store_first_hop) {
    tree.hops_.AdoptMapped(hops, static_cast<std::size_t>(h.hops_count));
  }
  IFLS_RETURN_NOT_OK(tree.InitFromStructure(structure));
  for (std::size_t i = 0; i < h.num_nodes; ++i) {
    if (records[i].num_ancestors != tree.nodes_[i].ancestor_matrices.size()) {
      return Status::InvalidArgument(
          "ancestor matrix count does not match the tree structure");
    }
  }
  tree.mapping_ = std::move(mapping);
  return tree;
}

}  // namespace ifls
