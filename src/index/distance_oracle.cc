#include "src/index/distance_oracle.h"

#include "src/graph/dijkstra.h"

namespace ifls {

namespace {
thread_local OracleCounters* g_counter_sink = nullptr;
std::atomic<std::uint64_t> g_shared_kernel_invocations{0};
std::atomic<std::uint64_t> g_shared_dijkstra_fallbacks{0};
}  // namespace

ScopedOracleCounterSink::ScopedOracleCounterSink(OracleCounters* sink)
    : previous_(g_counter_sink) {
  g_counter_sink = sink;
}

ScopedOracleCounterSink::~ScopedOracleCounterSink() {
  g_counter_sink = previous_;
}

OracleCounters* ScopedOracleCounterSink::Active() { return g_counter_sink; }

void CountKernelInvocation() {
  if (OracleCounters* sink = g_counter_sink) {
    ++sink->kernel_invocations;
    return;
  }
  g_shared_kernel_invocations.fetch_add(1, std::memory_order_relaxed);
}

void CountDijkstraFallback() {
  if (OracleCounters* sink = g_counter_sink) {
    ++sink->dijkstra_fallbacks;
    return;
  }
  g_shared_dijkstra_fallbacks.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t SharedKernelInvocations() {
  return g_shared_kernel_invocations.load(std::memory_order_relaxed);
}

std::uint64_t SharedDijkstraFallbacks() {
  return g_shared_dijkstra_fallbacks.load(std::memory_order_relaxed);
}

DistanceOracle::~DistanceOracle() = default;

// ---------------------------------------------------------------- counters

void DistanceOracle::BumpDoorDistanceEvals() const {
  if (OracleCounters* sink = ScopedOracleCounterSink::Active()) {
    ++sink->door_distance_evals;
    return;
  }
  shared_door_distance_evals_.fetch_add(1, std::memory_order_relaxed);
}

void DistanceOracle::BumpMatrixLookups(std::uint64_t n) const {
  if (OracleCounters* sink = ScopedOracleCounterSink::Active()) {
    sink->matrix_lookups += n;
    return;
  }
  shared_matrix_lookups_.fetch_add(n, std::memory_order_relaxed);
}

void DistanceOracle::BumpCacheHits() const {
  if (OracleCounters* sink = ScopedOracleCounterSink::Active()) {
    ++sink->cache_hits;
    return;
  }
  shared_cache_hits_.fetch_add(1, std::memory_order_relaxed);
}

void DistanceOracle::BumpCacheMisses() const {
  if (OracleCounters* sink = ScopedOracleCounterSink::Active()) {
    ++sink->cache_misses;
    return;
  }
  shared_cache_misses_.fetch_add(1, std::memory_order_relaxed);
}

OracleCounters DistanceOracle::counters() const {
  OracleCounters c;
  c.door_distance_evals =
      shared_door_distance_evals_.load(std::memory_order_relaxed);
  c.matrix_lookups = shared_matrix_lookups_.load(std::memory_order_relaxed);
  c.cache_hits = shared_cache_hits_.load(std::memory_order_relaxed);
  c.cache_misses = shared_cache_misses_.load(std::memory_order_relaxed);
  return c;
}

void DistanceOracle::ResetCounters() const {
  shared_door_distance_evals_.store(0, std::memory_order_relaxed);
  shared_matrix_lookups_.store(0, std::memory_order_relaxed);
  shared_cache_hits_.store(0, std::memory_order_relaxed);
  shared_cache_misses_.store(0, std::memory_order_relaxed);
}

void DistanceOracle::CopyCountersFrom(const DistanceOracle& other) {
  shared_door_distance_evals_.store(
      other.shared_door_distance_evals_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  shared_matrix_lookups_.store(
      other.shared_matrix_lookups_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  shared_cache_hits_.store(
      other.shared_cache_hits_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  shared_cache_misses_.store(
      other.shared_cache_misses_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
}

// ------------------------------------------------- default distance paths
// These mirror the reference VIP-tree composition loops exactly (same
// iteration order, same `leg >= best` pruning), so any backend whose
// DoorToDoor agrees with the door-graph shortest distances produces
// bit-identical point/partition distances and tie-breaks.

double DistanceOracle::PointToDoor(const Point& a, PartitionId pa,
                                   DoorId d) const {
  const Venue& v = venue();
  const Partition& part = v.partition(pa);
  double best = kInfDistance;
  for (DoorId d1 : part.doors) {
    const double leg = PointToDoorDistance(a, v.door(d1));
    if (leg >= best) continue;
    const double cand = leg + DoorToDoor(d1, d);
    if (cand < best) best = cand;
  }
  return best;
}

double DistanceOracle::PointToPoint(const Point& a, PartitionId pa,
                                    const Point& b, PartitionId pb) const {
  if (pa == pb) return PlanarDistance(a, b);
  const Venue& v = venue();
  const Partition& part_a = v.partition(pa);
  const Partition& part_b = v.partition(pb);
  double best = kInfDistance;
  for (DoorId d1 : part_a.doors) {
    const double leg_a = PointToDoorDistance(a, v.door(d1));
    if (leg_a >= best) continue;
    for (DoorId d2 : part_b.doors) {
      const double leg_b = PointToDoorDistance(b, v.door(d2));
      if (leg_a + leg_b >= best) continue;
      const double cand = leg_a + DoorToDoor(d1, d2) + leg_b;
      if (cand < best) best = cand;
    }
  }
  return best;
}

double DistanceOracle::PointToPartition(const Point& a, PartitionId pa,
                                        PartitionId target) const {
  if (pa == target) return 0.0;
  const Venue& v = venue();
  const Partition& part_a = v.partition(pa);
  const Partition& part_t = v.partition(target);
  double best = kInfDistance;
  for (DoorId d1 : part_a.doors) {
    const double leg = PointToDoorDistance(a, v.door(d1));
    if (leg >= best) continue;
    for (DoorId d2 : part_t.doors) {
      const double cand = leg + DoorToDoor(d1, d2);
      if (cand < best) best = cand;
    }
  }
  return best;
}

double DistanceOracle::DoorToPartition(DoorId d, PartitionId target) const {
  const Partition& part = venue().partition(target);
  double best = kInfDistance;
  for (DoorId d2 : part.doors) {
    const double cand = DoorToDoor(d, d2);
    if (cand < best) best = cand;
  }
  return best;
}

double DistanceOracle::PartitionToPartition(PartitionId p,
                                            PartitionId q) const {
  if (p == q) return 0.0;
  const Venue& v = venue();
  const Partition& part_p = v.partition(p);
  const Partition& part_q = v.partition(q);
  double best = kInfDistance;
  for (DoorId d1 : part_p.doors) {
    for (DoorId d2 : part_q.doors) {
      const double cand = DoorToDoor(d1, d2);
      if (cand < best) best = cand;
    }
  }
  return best;
}

// ------------------------------------------- degenerate hierarchy defaults
// One root "leaf" (id 0) containing every partition. Hierarchical solvers
// remain correct against such a backend; they just cannot prune.

NodeId DistanceOracle::root() const { return 0; }

std::size_t DistanceOracle::num_nodes() const { return 1; }

bool DistanceOracle::IsLeaf(NodeId) const { return true; }

NodeId DistanceOracle::Parent(NodeId) const { return kInvalidNode; }

NodeId DistanceOracle::LeafOf(PartitionId) const { return root(); }

std::span<const NodeId> DistanceOracle::Children(NodeId) const { return {}; }

const std::vector<PartitionId>& DistanceOracle::FlatPartitions() const {
  std::call_once(flat_partitions_once_, [&] {
    const std::size_t n = venue().num_partitions();
    flat_partitions_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      flat_partitions_[i] = static_cast<PartitionId>(i);
    }
  });
  return flat_partitions_;
}

std::span<const PartitionId> DistanceOracle::NodePartitions(NodeId) const {
  return FlatPartitions();
}

bool DistanceOracle::NodeContainsPartition(NodeId, PartitionId) const {
  return true;
}

double DistanceOracle::PartitionToNode(PartitionId, NodeId) const {
  return 0.0;
}

double DistanceOracle::PointToNode(const Point&, PartitionId, NodeId) const {
  return 0.0;
}

}  // namespace ifls
