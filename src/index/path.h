#ifndef IFLS_INDEX_PATH_H_
#define IFLS_INDEX_PATH_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/graph/dijkstra.h"
#include "src/graph/door_graph.h"
#include "src/index/vip_tree.h"

namespace ifls {

/// A walkable indoor route: the sequence of doors crossed between two
/// points, with the total walking distance. Waypoints() expands it into a
/// polyline (start, door positions, end) for rendering.
struct IndoorPath {
  Point start;
  PartitionId start_partition = kInvalidPartition;
  Point end;
  PartitionId end_partition = kInvalidPartition;
  /// Doors crossed, in order; empty when both points share a partition.
  std::vector<DoorId> doors;
  double distance = 0.0;

  std::size_t num_hops() const { return doors.size(); }
};

/// Computes full door-level routes. Distances come from the VIP-tree (so a
/// route's length always equals the index's iDist); the door sequence is
/// reconstructed by following first-hop doors where the tree stores them
/// (within leaves) and door-graph Dijkstra across node boundaries. The
/// door graph is built once per reconstructor.
class PathReconstructor {
 public:
  /// The tree must outlive the reconstructor.
  explicit PathReconstructor(const VipTree* tree);

  /// Shortest route between two points. Fails when either partition id is
  /// out of range or the points are not inside their partitions.
  Result<IndoorPath> PointToPoint(const Point& a, PartitionId pa,
                                  const Point& b, PartitionId pb) const;

  /// Shortest route from a point to the nearest door of `target` (e.g. a
  /// client walking to a facility).
  Result<IndoorPath> PointToPartition(const Point& a, PartitionId pa,
                                      PartitionId target) const;

  /// Polyline of a path: start point, each crossed door's position, end
  /// point. Positions on stair doors appear once (the level changes there).
  static std::vector<Point> Waypoints(const IndoorPath& path,
                                      const Venue& venue);

  /// Human-readable route description for logs / examples.
  static std::string Describe(const IndoorPath& path, const Venue& venue);

 private:
  /// Door sequence (inclusive) realizing the shortest a->b door walk.
  std::vector<DoorId> DoorRoute(DoorId a, DoorId b) const;

  const VipTree* tree_;
  DoorGraph graph_;
};

}  // namespace ifls

#endif  // IFLS_INDEX_PATH_H_
