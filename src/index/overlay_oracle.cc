#include "src/index/overlay_oracle.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/common/logging.h"

namespace ifls {
namespace {

bool IsSortedUnique(std::span<const PartitionId> ids) {
  for (std::size_t i = 1; i < ids.size(); ++i) {
    if (ids[i - 1] >= ids[i]) return false;
  }
  return true;
}

bool Contains(std::span<const PartitionId> sorted, PartitionId p) {
  return std::binary_search(sorted.begin(), sorted.end(), p);
}

Status CheckSortedUnique(std::span<const PartitionId> ids, const char* what) {
  if (!IsSortedUnique(ids)) {
    return Status::InvalidArgument(std::string(what) +
                                   " must be sorted ascending and unique");
  }
  return Status::OK();
}

}  // namespace

std::vector<PartitionId> ComposeFacilitySet(
    std::span<const PartitionId> base, std::span<const PartitionId> added,
    std::span<const PartitionId> removed) {
  std::vector<PartitionId> kept;
  kept.reserve(base.size() + added.size());
  std::set_difference(base.begin(), base.end(), removed.begin(),
                      removed.end(), std::back_inserter(kept));
  std::vector<PartitionId> out;
  out.reserve(kept.size() + added.size());
  std::set_union(kept.begin(), kept.end(), added.begin(), added.end(),
                 std::back_inserter(out));
  return out;
}

Status ValidateFacilityDelta(const FacilityDelta& delta,
                             std::span<const PartitionId> base_existing,
                             std::span<const PartitionId> base_candidates) {
  IFLS_RETURN_NOT_OK(CheckSortedUnique(base_existing, "base existing set"));
  IFLS_RETURN_NOT_OK(CheckSortedUnique(base_candidates, "base candidate set"));
  IFLS_RETURN_NOT_OK(CheckSortedUnique(delta.added_existing,
                                       "delta.added_existing"));
  IFLS_RETURN_NOT_OK(CheckSortedUnique(delta.removed_existing,
                                       "delta.removed_existing"));
  IFLS_RETURN_NOT_OK(CheckSortedUnique(delta.added_candidates,
                                       "delta.added_candidates"));
  IFLS_RETURN_NOT_OK(CheckSortedUnique(delta.removed_candidates,
                                       "delta.removed_candidates"));
  for (PartitionId p : delta.removed_existing) {
    if (!Contains(base_existing, p)) {
      return Status::InvalidArgument(
          "removed_existing partition " + std::to_string(p) +
          " is not in the base existing set");
    }
  }
  for (PartitionId p : delta.added_existing) {
    if (Contains(base_existing, p)) {
      return Status::InvalidArgument("added_existing partition " +
                                     std::to_string(p) +
                                     " already in the base existing set");
    }
  }
  for (PartitionId p : delta.removed_candidates) {
    if (!Contains(base_candidates, p)) {
      return Status::InvalidArgument(
          "removed_candidates partition " + std::to_string(p) +
          " is not in the base candidate set");
    }
  }
  for (PartitionId p : delta.added_candidates) {
    if (Contains(base_candidates, p)) {
      return Status::InvalidArgument("added_candidates partition " +
                                     std::to_string(p) +
                                     " already in the base candidate set");
    }
  }
  const std::vector<PartitionId> fe = ComposeFacilitySet(
      base_existing, delta.added_existing, delta.removed_existing);
  const std::vector<PartitionId> fn = ComposeFacilitySet(
      base_candidates, delta.added_candidates, delta.removed_candidates);
  std::vector<PartitionId> both;
  std::set_intersection(fe.begin(), fe.end(), fn.begin(), fn.end(),
                        std::back_inserter(both));
  if (!both.empty()) {
    return Status::InvalidArgument(
        "composed existing and candidate sets intersect at partition " +
        std::to_string(both.front()));
  }
  return Status::OK();
}

OverlayOracle::OverlayOracle(const DistanceOracle* base,
                             std::span<const PartitionId> base_existing,
                             std::span<const PartitionId> base_candidates,
                             FacilityDelta delta)
    : base_(base), delta_(std::move(delta)) {
  IFLS_CHECK(base_ != nullptr);
  const Status valid =
      ValidateFacilityDelta(delta_, base_existing, base_candidates);
  IFLS_CHECK(valid.ok()) << valid.ToString();
  effective_existing_ = ComposeFacilitySet(
      base_existing, delta_.added_existing, delta_.removed_existing);
  effective_candidates_ = ComposeFacilitySet(
      base_candidates, delta_.added_candidates, delta_.removed_candidates);
}

}  // namespace ifls
