#ifndef IFLS_INDEX_GRAPH_ORACLE_H_
#define IFLS_INDEX_GRAPH_ORACLE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/concurrent_cache.h"
#include "src/common/workspace_pool.h"
#include "src/graph/dijkstra.h"
#include "src/graph/door_graph.h"
#include "src/index/distance_oracle.h"
#include "src/indoor/venue.h"

namespace ifls {

/// Exact indoor-distance oracle answering straight from the door graph, with
/// lazily memoized single-source Dijkstra runs (one per queried source
/// door). Serves three roles: ground truth the VIP-tree is tested against,
/// the "no index" comparator in the micro benchmarks, and the memoized
/// DistanceOracle backend (solvers run against it unchanged, minus the
/// hierarchy pruning a materialized tree provides).
///
/// Thread-safe: concurrent queries may share one oracle. Each source door's
/// Dijkstra run is computed exactly once (std::call_once per cache slot);
/// runs for distinct sources proceed in parallel, each on a pooled
/// workspace. Memoized slots are immutable after publication, so the read
/// path is lock-free. DoorToDoor additionally fronts the per-source rows
/// with a sharded pair-level memo (ConcurrentDoorCache) so repeated pair
/// queries skip even the row indirection.
class GraphDistanceOracle : public DistanceOracle {
 public:
  explicit GraphDistanceOracle(const Venue* venue);

  const Venue& venue() const override { return *venue_; }

  /// Global shortest walking distance between two doors.
  double DoorToDoor(DoorId a, DoorId b) const override;

  /// Exact indoor distance between two points. Overrides the generic
  /// composition to reuse one memoized Dijkstra row per source door.
  double PointToPoint(const Point& a, PartitionId pa, const Point& b,
                      PartitionId pb) const override;

  /// Exact indoor distance from a point to partition `target`'s nearest
  /// reachable door (0 when pa == target).
  double PointToPartition(const Point& a, PartitionId pa,
                          PartitionId target) const override;

  /// min over door pairs, zero intra offsets (iMinD for partitions).
  double PartitionToPartition(PartitionId p, PartitionId q) const override;

  /// Number of Dijkstra runs performed so far (memoization hit rate probe).
  std::size_t num_sssp_runs() const {
    return num_runs_.load(std::memory_order_relaxed);
  }

  /// Occupancy/eviction gauges of the pair-level door-distance memo.
  ConcurrentDoorCache::Stats pair_cache_stats() const {
    return pair_cache_.stats();
  }

 private:
  /// One memoized source door. `once` guarantees a single compute even
  /// under a concurrent stampede; `paths` is written exactly once.
  struct CacheSlot {
    std::once_flag once;
    std::unique_ptr<ShortestPaths> paths;
  };

  const ShortestPaths& PathsFrom(DoorId source) const;

  const Venue* venue_;
  DoorGraph graph_;
  mutable std::vector<CacheSlot> cache_;  // fixed size, slots never move
  mutable WorkspacePool<DijkstraWorkspace> workspaces_;
  mutable std::atomic<std::size_t> num_runs_{0};
  /// Pair-level memo keyed (from_door << 32) | to_door, per orientation —
  /// opposite Dijkstra runs agree only mathematically, not bit-for-bit.
  mutable ConcurrentDoorCache pair_cache_;
};

}  // namespace ifls

#endif  // IFLS_INDEX_GRAPH_ORACLE_H_
