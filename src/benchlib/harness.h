#ifndef IFLS_BENCHLIB_HARNESS_H_
#define IFLS_BENCHLIB_HARNESS_H_

#include <map>
#include <memory>
#include <string>

#include "src/core/query.h"
#include "src/datasets/workload.h"
#include "src/index/vip_tree.h"

namespace ifls {

/// Experiment scale, selected with the IFLS_BENCH_SCALE environment
/// variable ("smoke", "default", "full"). Paper-scale runs (full) take long
/// on the baseline side — exactly as in the paper, where the baseline needs
/// >10^3 seconds at 20k clients — so the default divides client counts and
/// averages fewer queries while preserving every trend.
struct BenchScale {
  std::string name = "default";
  /// Client counts are divided by this (1 = paper scale).
  std::size_t client_divisor = 20;
  /// Divisor for the *real-setting* experiments: Melbourne Central queries
  /// are cheap, so these run much closer to paper scale (the efficient
  /// approach's crossover over the baseline needs the larger client
  /// counts, exactly as in the paper's Figure 5).
  std::size_t real_client_divisor = 2;
  /// IFLS queries averaged per point (paper: 10).
  int repeats = 1;

  static BenchScale FromEnv();

  std::size_t Clients(std::size_t paper_count) const {
    return std::max<std::size_t>(1, paper_count / client_divisor);
  }
  std::size_t RealClients(std::size_t paper_count) const {
    return std::max<std::size_t>(1, paper_count / real_client_divisor);
  }
};

/// Mean time/memory over the repeats of one solver on one parameter point.
struct SolverAggregate {
  double mean_time_seconds = 0.0;
  double mean_memory_mb = 0.0;
  double mean_objective = 0.0;
  std::int64_t mean_distance_computations = 0;
};

/// One (venue, x-value) comparison row: efficient approach vs modified
/// MinMax baseline — the two series of every figure in the paper.
struct PairedAggregate {
  SolverAggregate efficient;
  SolverAggregate baseline;
  double speedup = 0.0;  // baseline time / efficient time
  /// With verify_agreement: queries (out of repeats) where both solvers'
  /// answers achieve the same exact objective (re-evaluated with
  /// EvaluateMinMax, outside the timed region). 0 when verification is off.
  int agreements = 0;
  int repeats = 0;
};

/// Caches built venues and VIP-trees across bench points (index construction
/// is offline in the paper and excluded from query timings).
class VenueCache {
 public:
  /// Venue + tree for a preset; `real_setting` adds the MC categories.
  const Venue& venue(VenuePreset preset, bool real_setting);
  const VipTree& tree(VenuePreset preset, bool real_setting);

 private:
  struct Entry {
    std::unique_ptr<Venue> venue;
    std::unique_ptr<VipTree> tree;
  };
  Entry& GetOrBuild(VenuePreset preset, bool real_setting);

  std::map<std::pair<int, bool>, Entry> cache_;
};

/// Runs the efficient approach and the baseline on `repeats` workload draws
/// (seeds seed, seed+1, ...) of `spec` and aggregates. The baseline gets an
/// offline Fe index per draw (untimed), matching the paper's setup. With
/// `verify_agreement` the answers are certified against each other by exact
/// re-evaluation (costs an extra O(|C| * |Fe|) pass per repeat, untimed).
PairedAggregate RunPaired(const Venue& venue, const VipTree& tree,
                          const WorkloadSpec& spec, int repeats,
                          std::uint64_t seed = 1,
                          bool verify_agreement = false);

}  // namespace ifls

#endif  // IFLS_BENCHLIB_HARNESS_H_
