#include "src/benchlib/harness.h"

#include <cmath>
#include <cstdlib>

#include "src/common/logging.h"
#include "src/core/efficient.h"
#include "src/core/minmax_baseline.h"

namespace ifls {

BenchScale BenchScale::FromEnv() {
  BenchScale scale;
  const char* env = std::getenv("IFLS_BENCH_SCALE");
  const std::string value = env != nullptr ? env : "default";
  if (value == "smoke") {
    scale = {"smoke", /*client_divisor=*/100, /*real_client_divisor=*/20,
             /*repeats=*/1};
  } else if (value == "full") {
    scale = {"full", /*client_divisor=*/1, /*real_client_divisor=*/1,
             /*repeats=*/10};
  } else {
    scale = {"default", /*client_divisor=*/20, /*real_client_divisor=*/2,
             /*repeats=*/1};
    if (value != "default") {
      IFLS_LOG(WARNING) << "unknown IFLS_BENCH_SCALE '" << value
                        << "', using default";
    }
  }
  return scale;
}

VenueCache::Entry& VenueCache::GetOrBuild(VenuePreset preset,
                                          bool real_setting) {
  const auto key = std::make_pair(static_cast<int>(preset), real_setting);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  Entry entry;
  Result<Venue> venue = BuildPresetVenue(preset);
  IFLS_CHECK(venue.ok()) << venue.status().ToString();
  entry.venue = std::make_unique<Venue>(std::move(venue).value());
  if (real_setting) {
    IFLS_CHECK_OK(AssignMelbourneCentralCategories(entry.venue.get()));
  }
  Result<VipTree> tree = VipTree::Build(entry.venue.get());
  IFLS_CHECK(tree.ok()) << tree.status().ToString();
  entry.tree = std::make_unique<VipTree>(std::move(tree).value());
  return cache_.emplace(key, std::move(entry)).first->second;
}

const Venue& VenueCache::venue(VenuePreset preset, bool real_setting) {
  return *GetOrBuild(preset, real_setting).venue;
}

const VipTree& VenueCache::tree(VenuePreset preset, bool real_setting) {
  return *GetOrBuild(preset, real_setting).tree;
}

PairedAggregate RunPaired(const Venue& venue, const VipTree& tree,
                          const WorkloadSpec& spec, int repeats,
                          std::uint64_t seed, bool verify_agreement) {
  PairedAggregate agg;
  agg.repeats = repeats;
  for (int r = 0; r < repeats; ++r) {
    Rng rng(seed + static_cast<std::uint64_t>(r));
    IflsContext ctx;
    ctx.oracle = &tree;
    Result<FacilitySets> facilities = MakeFacilities(venue, spec, &rng);
    IFLS_CHECK(facilities.ok()) << facilities.status().ToString();
    ctx.existing = facilities->existing;
    ctx.candidates = facilities->candidates;
    ctx.clients = MakeClients(venue, spec, &rng);

    // Fe is indexed offline in the paper's setup: build it outside the
    // timed solver and hand it to the baseline.
    FacilityIndex offline(&tree, ctx.existing);
    MinMaxBaselineOptions baseline_options;
    baseline_options.offline_existing_index = &offline;

    Result<IflsResult> efficient = SolveEfficient(ctx);
    IFLS_CHECK(efficient.ok()) << efficient.status().ToString();
    Result<IflsResult> baseline = SolveModifiedMinMax(ctx, baseline_options);
    IFLS_CHECK(baseline.ok()) << baseline.status().ToString();

    agg.efficient.mean_time_seconds += efficient->stats.elapsed_seconds;
    agg.efficient.mean_memory_mb +=
        static_cast<double>(efficient->stats.peak_memory_bytes) / (1 << 20);
    agg.efficient.mean_objective += efficient->objective;
    agg.efficient.mean_distance_computations +=
        efficient->stats.distance_computations;
    agg.baseline.mean_time_seconds += baseline->stats.elapsed_seconds;
    agg.baseline.mean_memory_mb +=
        static_cast<double>(baseline->stats.peak_memory_bytes) / (1 << 20);
    agg.baseline.mean_objective += baseline->objective;
    agg.baseline.mean_distance_computations +=
        baseline->stats.distance_computations;

    if (verify_agreement) {
      // Certify by exact re-evaluation: a no-answer result scores the
      // no-new-facility objective (no candidate can beat it).
      auto achieved = [&](const IflsResult& r) {
        return r.found ? EvaluateMinMax(ctx, r.answer)
                       : NoFacilityMinMax(ctx);
      };
      const double e = achieved(*efficient);
      const double b = achieved(*baseline);
      if (std::abs(e - b) <= 1e-6 * std::max(1.0, std::abs(b))) {
        ++agg.agreements;
      } else {
        IFLS_LOG(WARNING) << "solver disagreement: efficient=" << e
                          << " baseline=" << b;
      }
    }
  }
  const double n = repeats > 0 ? repeats : 1;
  agg.efficient.mean_time_seconds /= n;
  agg.efficient.mean_memory_mb /= n;
  agg.efficient.mean_objective /= n;
  agg.efficient.mean_distance_computations /= repeats > 0 ? repeats : 1;
  agg.baseline.mean_time_seconds /= n;
  agg.baseline.mean_memory_mb /= n;
  agg.baseline.mean_objective /= n;
  agg.baseline.mean_distance_computations /= repeats > 0 ? repeats : 1;
  agg.speedup = agg.efficient.mean_time_seconds > 0
                    ? agg.baseline.mean_time_seconds /
                          agg.efficient.mean_time_seconds
                    : 0.0;
  return agg;
}

}  // namespace ifls
