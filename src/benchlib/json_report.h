#ifndef IFLS_BENCHLIB_JSON_REPORT_H_
#define IFLS_BENCHLIB_JSON_REPORT_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <type_traits>
#include <vector>

#include "src/common/status.h"

namespace ifls {

/// Minimal streaming JSON writer with indentation and comma management —
/// just enough for the bench reports, no parsing, no dependencies. Keys and
/// string values are escaped; doubles print with %.9g (compact, round-trip
/// close enough for perf figures); non-finite doubles degrade to null.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream* out);

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Must be followed by exactly one Value/Begin* call.
  void Key(const std::string& name);

  void Value(double v);
  void Value(std::int64_t v);
  void Value(std::uint64_t v);
  void Value(bool v);
  void Value(const std::string& v);
  void Value(const char* v) { Value(std::string(v)); }
  /// Any other integer goes through the signed/unsigned 64-bit overloads.
  template <typename T,
            typename = std::enable_if_t<std::is_integral_v<T> &&
                                        !std::is_same_v<T, bool>>>
  void Value(T v) {
    if constexpr (std::is_signed_v<T>) {
      Value(static_cast<std::int64_t>(v));
    } else {
      Value(static_cast<std::uint64_t>(v));
    }
  }

  template <typename T>
  void Field(const std::string& key, const T& value) {
    Key(key);
    Value(value);
  }

 private:
  void Indent();
  /// Writes the separator/indent owed before a new element at the current
  /// nesting level.
  void BeforeElement();

  std::ostream* out_;
  /// One entry per open container: number of elements emitted so far.
  std::vector<std::size_t> counts_;
  bool after_key_ = false;
};

/// Canonical location of a bench report: "BENCH_<name>.json" in the current
/// working directory (benches run from the repo root, so reports line up
/// with the committed trajectory files).
std::string BenchReportPath(const std::string& name);

/// Writes the shared bench-report schema to BenchReportPath(name):
///   { "benchmark": <name>, "schema_version": 3,
///     "git_sha": ..., "build_type": ..., "kernel_dispatch": ...,
///     "kernel_tiers_compiled": [...], ...body fields... }
/// Schema v2 added the attribution fields (commit, CMAKE_BUILD_TYPE, active
/// min-plus kernel backend); v3 widened kernel_dispatch to the tier ladder
/// ("scalar|sse4|avx2|avx512") and added the compiled-tier list. Readers
/// that ignore unknown fields are unaffected. `body` receives the writer
/// positioned inside the envelope object and adds its fields via
/// Field()/Key() + nested containers.
Status WriteBenchReport(const std::string& name,
                        const std::function<void(JsonWriter&)>& body);

/// Same schema, explicit destination (for benches exposing a --report=PATH
/// flag). WriteBenchReport(name, body) is this with BenchReportPath(name).
Status WriteBenchReportToFile(const std::string& path, const std::string& name,
                              const std::function<void(JsonWriter&)>& body);

}  // namespace ifls

#endif  // IFLS_BENCHLIB_JSON_REPORT_H_
