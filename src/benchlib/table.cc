#include "src/benchlib/table.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace ifls {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::Num(double value) {
  std::ostringstream os;
  if (std::isinf(value)) return "inf";
  if (value != 0.0 && (std::abs(value) < 1e-3 || std::abs(value) >= 1e6)) {
    os << std::scientific << std::setprecision(3) << value;
  } else {
    os << std::fixed << std::setprecision(4) << value;
  }
  return os.str();
}

std::string TextTable::Int(long long value) { return std::to_string(value); }

void TextTable::Print(std::ostream* out) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t i = 0; i < header_.size(); ++i) {
    widths[i] = header_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : "";
      *out << std::left << std::setw(static_cast<int>(widths[i]) + 2) << cell;
    }
    *out << "\n";
  };
  print_row(header_);
  std::string rule;
  for (std::size_t w : widths) rule += std::string(w + 2, '-');
  *out << rule << "\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace ifls
