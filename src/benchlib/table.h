#ifndef IFLS_BENCHLIB_TABLE_H_
#define IFLS_BENCHLIB_TABLE_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace ifls {

/// Minimal fixed-width table printer for the experiment binaries: one header
/// row, numeric cells formatted to a sensible precision, aligned columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with 4 significant digits.
  static std::string Num(double value);
  /// Integer-style cell.
  static std::string Int(long long value);

  void Print(std::ostream* out) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ifls

#endif  // IFLS_BENCHLIB_TABLE_H_
