#include "src/benchlib/json_report.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "src/index/minplus_kernels.h"

// Build attribution, injected per-source by src/CMakeLists.txt.
#ifndef IFLS_GIT_SHA
#define IFLS_GIT_SHA "unknown"
#endif
#ifndef IFLS_BUILD_TYPE
#define IFLS_BUILD_TYPE ""
#endif

namespace ifls {
namespace {

void EscapeTo(std::ostream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

JsonWriter::JsonWriter(std::ostream* out) : out_(out) {}

void JsonWriter::Indent() {
  for (std::size_t i = 0; i < counts_.size(); ++i) *out_ << "  ";
}

void JsonWriter::BeforeElement() {
  if (after_key_) {
    after_key_ = false;
    return;  // the key already placed us
  }
  if (counts_.empty()) return;  // root value
  if (counts_.back() > 0) *out_ << ',';
  *out_ << '\n';
  Indent();
  ++counts_.back();
}

void JsonWriter::BeginObject() {
  BeforeElement();
  *out_ << '{';
  counts_.push_back(0);
}

void JsonWriter::EndObject() {
  const bool empty = counts_.back() == 0;
  counts_.pop_back();
  if (!empty) {
    *out_ << '\n';
    Indent();
  }
  *out_ << '}';
}

void JsonWriter::BeginArray() {
  BeforeElement();
  *out_ << '[';
  counts_.push_back(0);
}

void JsonWriter::EndArray() {
  const bool empty = counts_.back() == 0;
  counts_.pop_back();
  if (!empty) {
    *out_ << '\n';
    Indent();
  }
  *out_ << ']';
}

void JsonWriter::Key(const std::string& name) {
  if (counts_.back() > 0) *out_ << ',';
  *out_ << '\n';
  Indent();
  ++counts_.back();
  EscapeTo(*out_, name);
  *out_ << ": ";
  after_key_ = true;
}

void JsonWriter::Value(double v) {
  BeforeElement();
  if (!std::isfinite(v)) {
    *out_ << "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  *out_ << buf;
}

void JsonWriter::Value(std::int64_t v) {
  BeforeElement();
  *out_ << v;
}

void JsonWriter::Value(std::uint64_t v) {
  BeforeElement();
  *out_ << v;
}

void JsonWriter::Value(bool v) {
  BeforeElement();
  *out_ << (v ? "true" : "false");
}

void JsonWriter::Value(const std::string& v) {
  BeforeElement();
  EscapeTo(*out_, v);
}

std::string BenchReportPath(const std::string& name) {
  return "BENCH_" + name + ".json";
}

Status WriteBenchReport(const std::string& name,
                        const std::function<void(JsonWriter&)>& body) {
  return WriteBenchReportToFile(BenchReportPath(name), name, body);
}

Status WriteBenchReportToFile(const std::string& path, const std::string& name,
                              const std::function<void(JsonWriter&)>& body) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  JsonWriter w(&out);
  w.BeginObject();
  w.Field("benchmark", name);
  w.Field("schema_version", std::int64_t{3});
  // Attribution envelope (schema v2, tier fields added in v3): which
  // commit, build flavor and kernel tier produced the numbers, so archived
  // BENCH_*.json artifacts stay comparable. kernel_dispatch is the tier
  // active when the report was written ("scalar|sse4|avx2|avx512");
  // kernel_tiers_compiled lists every backend baked into the binary.
  w.Field("git_sha", IFLS_GIT_SHA);
  w.Field("build_type", IFLS_BUILD_TYPE);
  w.Field("kernel_dispatch", kernels::ActiveKernelName());
  w.Key("kernel_tiers_compiled");
  w.BeginArray();
  for (int t = 0; t < kernels::kNumKernelTiers; ++t) {
    const auto tier = static_cast<kernels::KernelTier>(t);
    if (kernels::KernelTierCompiled(tier)) {
      w.Value(kernels::KernelTierName(tier));
    }
  }
  w.EndArray();
  body(w);
  w.EndObject();
  out << '\n';
  out.flush();
  if (!out) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

}  // namespace ifls
