#include "src/io/venue_io.h"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "src/indoor/venue_builder.h"

namespace ifls {
namespace {

constexpr char kMagic[] = "IFLS_VENUE";
constexpr int kVersion = 1;

const char* KindToken(PartitionKind kind) {
  switch (kind) {
    case PartitionKind::kRoom:
      return "room";
    case PartitionKind::kCorridor:
      return "corridor";
    case PartitionKind::kStairwell:
      return "stairwell";
  }
  return "?";
}

Result<PartitionKind> KindFromToken(const std::string& token) {
  if (token == "room") return PartitionKind::kRoom;
  if (token == "corridor") return PartitionKind::kCorridor;
  if (token == "stairwell") return PartitionKind::kStairwell;
  return Status::InvalidArgument("unknown partition kind '" + token + "'");
}

}  // namespace

Status SaveVenue(const Venue& venue, std::ostream* out) {
  if (out == nullptr) return Status::InvalidArgument("null output stream");
  std::ostream& os = *out;
  os << kMagic << " " << kVersion << "\n";
  os << "name " << venue.name() << "\n";
  os << std::setprecision(17);
  os << "partitions " << venue.num_partitions() << "\n";
  for (const Partition& p : venue.partitions()) {
    os << "p " << KindToken(p.kind) << " " << p.level() << " " << p.rect.min_x
       << " " << p.rect.min_y << " " << p.rect.max_x << " " << p.rect.max_y;
    if (!p.category.empty()) os << " " << p.category;
    os << "\n";
  }
  os << "doors " << venue.num_doors() << "\n";
  for (const Door& d : venue.doors()) {
    os << "d " << d.partition_a << " " << d.partition_b << " "
       << d.position.x << " " << d.position.y << " " << d.position.level
       << " " << d.vertical_cost << "\n";
  }
  if (!os.good()) return Status::IOError("failed writing venue stream");
  return Status::OK();
}

Status SaveVenueToFile(const Venue& venue, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  return SaveVenue(venue, &out);
}

Result<Venue> LoadVenue(std::istream* in) {
  if (in == nullptr) return Status::InvalidArgument("null input stream");
  std::string magic;
  int version = 0;
  if (!(*in >> magic >> version) || magic != kMagic) {
    return Status::InvalidArgument("not an IFLS_VENUE stream");
  }
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported venue format version " +
                                   std::to_string(version));
  }
  std::string keyword;
  if (!(*in >> keyword) || keyword != "name") {
    return Status::InvalidArgument("expected 'name'");
  }
  std::string name;
  std::getline(*in, name);
  if (!name.empty() && name.front() == ' ') name.erase(0, 1);

  std::size_t num_partitions = 0;
  if (!(*in >> keyword >> num_partitions) || keyword != "partitions") {
    return Status::InvalidArgument("expected 'partitions <count>'");
  }
  VenueBuilder builder(name);
  for (std::size_t i = 0; i < num_partitions; ++i) {
    std::string tag, kind_token;
    Level level = 0;
    double x0, y0, x1, y1;
    if (!(*in >> tag >> kind_token >> level >> x0 >> y0 >> x1 >> y1) ||
        tag != "p") {
      return Status::InvalidArgument("malformed partition line " +
                                     std::to_string(i));
    }
    IFLS_ASSIGN_OR_RETURN(PartitionKind kind, KindFromToken(kind_token));
    std::string category;
    std::getline(*in, category);
    if (!category.empty() && category.front() == ' ') category.erase(0, 1);
    builder.AddPartition(Rect(x0, y0, x1, y1, level), kind,
                         std::move(category));
  }

  std::size_t num_doors = 0;
  if (!(*in >> keyword >> num_doors) || keyword != "doors") {
    return Status::InvalidArgument("expected 'doors <count>'");
  }
  for (std::size_t i = 0; i < num_doors; ++i) {
    std::string tag;
    PartitionId a, b;
    double x, y, vcost;
    Level level;
    if (!(*in >> tag >> a >> b >> x >> y >> level >> vcost) || tag != "d") {
      return Status::InvalidArgument("malformed door line " +
                                     std::to_string(i));
    }
    if (a < 0 || b < 0 ||
        static_cast<std::size_t>(a) >= builder.num_partitions() ||
        static_cast<std::size_t>(b) >= builder.num_partitions()) {
      return Status::InvalidArgument("door " + std::to_string(i) +
                                     " references unknown partition");
    }
    if (vcost > 0.0) {
      builder.AddStairDoor(a, b, Point(x, y, level), vcost);
    } else {
      builder.AddDoor(a, b, Point(x, y, level));
    }
  }
  return builder.Build();
}

Result<Venue> LoadVenueFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  return LoadVenue(&in);
}

}  // namespace ifls
