#ifndef IFLS_IO_WORKLOAD_IO_H_
#define IFLS_IO_WORKLOAD_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/datasets/facility_selector.h"
#include "src/indoor/types.h"

namespace ifls {

/// The query-side half of a workload (facilities + clients), serialized to
/// the IFLS_WORKLOAD text format:
///
///   IFLS_WORKLOAD 1
///   existing <count> <ids...>
///   candidates <count> <ids...>
///   clients <count>
///   c <partition> <x> <y> <level>
struct WorkloadData {
  FacilitySets facilities;
  std::vector<Client> clients;
};

Status SaveWorkload(const WorkloadData& data, std::ostream* out);
Status SaveWorkloadToFile(const WorkloadData& data, const std::string& path);

Result<WorkloadData> LoadWorkload(std::istream* in);
Result<WorkloadData> LoadWorkloadFromFile(const std::string& path);

}  // namespace ifls

#endif  // IFLS_IO_WORKLOAD_IO_H_
