#include "src/io/svg_export.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "src/common/logging.h"

namespace ifls {
namespace {

constexpr char kRoomFill[] = "#e8e8e8";
constexpr char kCorridorFill[] = "#f7f7f7";
constexpr char kStairFill[] = "#cfd8dc";
constexpr char kExistingFill[] = "#1976d2";
constexpr char kCandidateFill[] = "#a5d6a7";
constexpr char kAnswerFill[] = "#ef6c00";
constexpr char kClientColor[] = "#c62828";
constexpr char kPathColor[] = "#6a1b9a";

class SvgWriter {
 public:
  SvgWriter(const Rect& bounds, double scale)
      : bounds_(bounds), scale_(scale) {
    const double margin = 10.0;
    width_ = bounds.width() * scale + 2 * margin;
    height_ = bounds.height() * scale + 2 * margin;
    margin_ = margin;
  }

  double X(double x) const { return margin_ + (x - bounds_.min_x) * scale_; }
  /// SVG y grows downward; venue y grows upward.
  double Y(double y) const {
    return margin_ + (bounds_.max_y - y) * scale_;
  }

  void Open(std::ostringstream* os) const {
    *os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width_
        << "\" height=\"" << height_ << "\" viewBox=\"0 0 " << width_ << " "
        << height_ << "\">\n";
    *os << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  }

  void RectShape(std::ostringstream* os, const Rect& r, const char* fill,
                 const char* stroke = "#555", double stroke_width = 1.0) const {
    *os << "<rect x=\"" << X(r.min_x) << "\" y=\"" << Y(r.max_y)
        << "\" width=\"" << r.width() * scale_ << "\" height=\""
        << r.height() * scale_ << "\" fill=\"" << fill << "\" stroke=\""
        << stroke << "\" stroke-width=\"" << stroke_width << "\"/>\n";
  }

  void Circle(std::ostringstream* os, const Point& p, double radius_px,
              const char* fill) const {
    *os << "<circle cx=\"" << X(p.x) << "\" cy=\"" << Y(p.y) << "\" r=\""
        << radius_px << "\" fill=\"" << fill << "\"/>\n";
  }

  void Text(std::ostringstream* os, const Point& p, const std::string& text,
            double size_px) const {
    *os << "<text x=\"" << X(p.x) << "\" y=\"" << Y(p.y)
        << "\" font-size=\"" << size_px
        << "\" text-anchor=\"middle\" fill=\"#333\">" << text << "</text>\n";
  }

  void Polyline(std::ostringstream* os, const std::vector<Point>& points,
                const char* stroke) const {
    if (points.size() < 2) return;
    *os << "<polyline fill=\"none\" stroke=\"" << stroke
        << "\" stroke-width=\"2\" stroke-dasharray=\"6 3\" points=\"";
    for (const Point& p : points) *os << X(p.x) << "," << Y(p.y) << " ";
    *os << "\"/>\n";
  }

 private:
  Rect bounds_;
  double scale_;
  double width_, height_, margin_;
};

const char* FillFor(const Partition& p, const SvgOptions& options) {
  if (p.id == options.answer) return kAnswerFill;
  if (std::find(options.existing_facilities.begin(),
                options.existing_facilities.end(),
                p.id) != options.existing_facilities.end()) {
    return kExistingFill;
  }
  if (std::find(options.candidate_locations.begin(),
                options.candidate_locations.end(),
                p.id) != options.candidate_locations.end()) {
    return kCandidateFill;
  }
  switch (p.kind) {
    case PartitionKind::kCorridor:
      return kCorridorFill;
    case PartitionKind::kStairwell:
      return kStairFill;
    case PartitionKind::kRoom:
      break;
  }
  return kRoomFill;
}

}  // namespace

std::string RenderLevelSvg(const Venue& venue, const SvgOptions& options) {
  const Rect bounds = venue.LevelBounds(options.level);
  IFLS_CHECK(bounds.IsValid()) << "level " << options.level
                               << " has no partitions";
  SvgWriter writer(bounds, options.scale);
  std::ostringstream os;
  writer.Open(&os);

  for (const Partition& p : venue.partitions()) {
    if (p.level() != options.level) continue;
    writer.RectShape(&os, p.rect, FillFor(p, options));
    if (options.label_partitions) {
      writer.Text(&os, p.rect.center(), std::to_string(p.id),
                  std::min(10.0, p.rect.height() * options.scale * 0.5));
    }
  }
  // Doors as small squares on the walls.
  for (const Door& d : venue.doors()) {
    const Level la = venue.partition(d.partition_a).level();
    const Level lb = venue.partition(d.partition_b).level();
    if (la != options.level && lb != options.level) continue;
    const double half = 1.5;
    os << "<rect x=\"" << writer.X(d.position.x) - half << "\" y=\""
       << writer.Y(d.position.y) - half << "\" width=\"" << 2 * half
       << "\" height=\"" << 2 * half << "\" fill=\""
       << (d.is_stair_door() ? "#b71c1c" : "#333") << "\"/>\n";
  }
  for (const IndoorPath& path : options.paths) {
    std::vector<Point> points = PathReconstructor::Waypoints(path, venue);
    // Keep only the stretch on this level.
    std::vector<Point> visible;
    for (const Point& p : points) {
      if (p.level == options.level) visible.push_back(p);
    }
    writer.Polyline(&os, visible, kPathColor);
  }
  for (const Client& c : options.clients) {
    if (c.position.level != options.level) continue;
    writer.Circle(&os, c.position, 2.0, kClientColor);
  }
  os << "</svg>\n";
  return os.str();
}

Status RenderLevelSvgToFile(const Venue& venue, const SvgOptions& options,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  out << RenderLevelSvg(venue, options);
  if (!out.good()) return Status::IOError("failed writing '" + path + "'");
  return Status::OK();
}

}  // namespace ifls
