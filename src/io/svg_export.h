#ifndef IFLS_IO_SVG_EXPORT_H_
#define IFLS_IO_SVG_EXPORT_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/index/path.h"
#include "src/indoor/types.h"
#include "src/indoor/venue.h"

namespace ifls {

/// What to draw on one floor of a venue. All ids are optional; unknown /
/// other-level items are silently skipped.
struct SvgOptions {
  Level level = 0;
  /// Pixels per metre.
  double scale = 4.0;
  /// Partition fills by role.
  std::vector<PartitionId> existing_facilities;
  std::vector<PartitionId> candidate_locations;
  /// The query answer, highlighted.
  PartitionId answer = kInvalidPartition;
  /// Client dots.
  std::vector<Client> clients;
  /// Routes drawn as polylines (only their same-level segments).
  std::vector<IndoorPath> paths;
  /// Label partitions with their ids.
  bool label_partitions = false;
};

/// Renders one level of the venue as a standalone SVG document: partition
/// rectangles (rooms grey, corridors light, stairwells hatched-ish), doors
/// as ticks, facilities / candidates / answer color-coded, clients as dots
/// and paths as polylines. Intended for docs, debugging and the examples.
std::string RenderLevelSvg(const Venue& venue, const SvgOptions& options);

/// Renders and writes to a file.
Status RenderLevelSvgToFile(const Venue& venue, const SvgOptions& options,
                            const std::string& path);

}  // namespace ifls

#endif  // IFLS_IO_SVG_EXPORT_H_
