#ifndef IFLS_IO_VENUE_IO_H_
#define IFLS_IO_VENUE_IO_H_

#include <iosfwd>
#include <string>

#include "src/common/status.h"
#include "src/indoor/venue.h"

namespace ifls {

/// Serializes a venue to the line-oriented IFLS_VENUE text format:
///
///   IFLS_VENUE 1
///   name <venue name>
///   partitions <count>
///   p <kind> <level> <min_x> <min_y> <max_x> <max_y> [category...]
///   doors <count>
///   d <partition_a> <partition_b> <x> <y> <level> <vertical_cost>
///
/// Ids are implicit (line order), matching the in-memory dense ids.
Status SaveVenue(const Venue& venue, std::ostream* out);
Status SaveVenueToFile(const Venue& venue, const std::string& path);

/// Parses the format above and rebuilds (and re-validates) the venue.
Result<Venue> LoadVenue(std::istream* in);
Result<Venue> LoadVenueFromFile(const std::string& path);

}  // namespace ifls

#endif  // IFLS_IO_VENUE_IO_H_
