#include "src/io/workload_io.h"

#include <fstream>
#include <iomanip>
#include <ostream>

namespace ifls {
namespace {

constexpr char kMagic[] = "IFLS_WORKLOAD";
constexpr int kVersion = 1;

}  // namespace

Status SaveWorkload(const WorkloadData& data, std::ostream* out) {
  if (out == nullptr) return Status::InvalidArgument("null output stream");
  std::ostream& os = *out;
  os << kMagic << " " << kVersion << "\n";
  os << std::setprecision(17);
  os << "existing " << data.facilities.existing.size();
  for (PartitionId p : data.facilities.existing) os << " " << p;
  os << "\n";
  os << "candidates " << data.facilities.candidates.size();
  for (PartitionId p : data.facilities.candidates) os << " " << p;
  os << "\n";
  os << "clients " << data.clients.size() << "\n";
  for (const Client& c : data.clients) {
    os << "c " << c.partition << " " << c.position.x << " " << c.position.y
       << " " << c.position.level << "\n";
  }
  if (!os.good()) return Status::IOError("failed writing workload stream");
  return Status::OK();
}

Status SaveWorkloadToFile(const WorkloadData& data, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  return SaveWorkload(data, &out);
}

Result<WorkloadData> LoadWorkload(std::istream* in) {
  if (in == nullptr) return Status::InvalidArgument("null input stream");
  std::string magic;
  int version = 0;
  if (!(*in >> magic >> version) || magic != kMagic) {
    return Status::InvalidArgument("not an IFLS_WORKLOAD stream");
  }
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported workload format version " +
                                   std::to_string(version));
  }
  WorkloadData data;
  std::string keyword;
  std::size_t count = 0;
  if (!(*in >> keyword >> count) || keyword != "existing") {
    return Status::InvalidArgument("expected 'existing <count>'");
  }
  data.facilities.existing.resize(count);
  for (auto& p : data.facilities.existing) {
    if (!(*in >> p)) return Status::InvalidArgument("truncated existing ids");
  }
  if (!(*in >> keyword >> count) || keyword != "candidates") {
    return Status::InvalidArgument("expected 'candidates <count>'");
  }
  data.facilities.candidates.resize(count);
  for (auto& p : data.facilities.candidates) {
    if (!(*in >> p)) {
      return Status::InvalidArgument("truncated candidate ids");
    }
  }
  if (!(*in >> keyword >> count) || keyword != "clients") {
    return Status::InvalidArgument("expected 'clients <count>'");
  }
  data.clients.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::string tag;
    Client c;
    if (!(*in >> tag >> c.partition >> c.position.x >> c.position.y >>
          c.position.level) ||
        tag != "c") {
      return Status::InvalidArgument("malformed client line " +
                                     std::to_string(i));
    }
    c.id = static_cast<ClientId>(i);
    data.clients.push_back(c);
  }
  return data;
}

Result<WorkloadData> LoadWorkloadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  return LoadWorkload(&in);
}

}  // namespace ifls
