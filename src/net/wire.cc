#include "src/net/wire.h"

#include <cstring>
#include <utility>

#include "src/common/endian.h"
#include "src/common/hash.h"

namespace ifls {

const char* WireOpcodeName(WireOpcode opcode) {
  switch (opcode) {
    case WireOpcode::kQueryMinMax: return "QueryMinMax";
    case WireOpcode::kQueryMinDist: return "QueryMinDist";
    case WireOpcode::kQueryMaxSum: return "QueryMaxSum";
    case WireOpcode::kMutate: return "Mutate";
    case WireOpcode::kSubscribe: return "Subscribe";
    case WireOpcode::kSubscriptionTick: return "SubscriptionTick";
    case WireOpcode::kUnsubscribe: return "Unsubscribe";
    case WireOpcode::kMetricsPull: return "MetricsPull";
    case WireOpcode::kTracePull: return "TracePull";
    case WireOpcode::kPing: return "Ping";
    case WireOpcode::kQueryResult: return "QueryResult";
    case WireOpcode::kMutateResult: return "MutateResult";
    case WireOpcode::kSubscribeResult: return "SubscribeResult";
    case WireOpcode::kAck: return "Ack";
    case WireOpcode::kMetricsText: return "MetricsText";
    case WireOpcode::kTraceJson: return "TraceJson";
    case WireOpcode::kPong: return "Pong";
    case WireOpcode::kSubscriptionPush: return "SubscriptionPush";
    case WireOpcode::kError: return "Error";
  }
  return "Unknown";
}

WireOpcode QueryOpcodeFor(IflsObjective objective) {
  switch (objective) {
    case IflsObjective::kMinMax: return WireOpcode::kQueryMinMax;
    case IflsObjective::kMinDist: return WireOpcode::kQueryMinDist;
    case IflsObjective::kMaxSum: return WireOpcode::kQueryMaxSum;
  }
  return WireOpcode::kQueryMinMax;
}

IflsObjective ObjectiveForQueryOpcode(WireOpcode opcode) {
  switch (opcode) {
    case WireOpcode::kQueryMinDist: return IflsObjective::kMinDist;
    case WireOpcode::kQueryMaxSum: return IflsObjective::kMaxSum;
    default: return IflsObjective::kMinMax;
  }
}

namespace {

// ---------------------------------------------------------------------------
// Payload cursor helpers. The writer appends through AppendLE; the reader is
// a bounds-checked cursor whose every primitive names the field it failed on
// — the typed-rejection contract tests/wire_test.cc pins down.
// ---------------------------------------------------------------------------

class PayloadReader {
 public:
  explicit PayloadReader(std::string_view payload) : data_(payload) {}

  template <typename T>
  Status Read(const char* what, T* out) {
    if (data_.size() - pos_ < sizeof(T)) {
      return Truncated(what);
    }
    *out = LoadLE<T>(data_.data() + pos_);
    pos_ += sizeof(T);
    return Status::OK();
  }

  Status ReadString(const char* what, std::string* out) {
    std::uint32_t length = 0;
    IFLS_RETURN_NOT_OK(Read(what, &length));
    if (data_.size() - pos_ < length) {
      return Truncated(what);
    }
    out->assign(data_.data() + pos_, length);
    pos_ += length;
    return Status::OK();
  }

  Status ReadClients(std::vector<Client>* out) {
    std::uint32_t count = 0;
    IFLS_RETURN_NOT_OK(Read("client count", &count));
    // 28 bytes per client; reject counts the payload cannot possibly hold
    // before reserving anything.
    if (data_.size() - pos_ < static_cast<std::size_t>(count) * 28) {
      return Truncated("client array");
    }
    out->clear();
    out->reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      Client c;
      std::int32_t level = 0;
      IFLS_RETURN_NOT_OK(Read("client id", &c.id));
      IFLS_RETURN_NOT_OK(Read("client x", &c.position.x));
      IFLS_RETURN_NOT_OK(Read("client y", &c.position.y));
      IFLS_RETURN_NOT_OK(Read("client level", &level));
      IFLS_RETURN_NOT_OK(Read("client partition", &c.partition));
      c.position.level = level;
      out->push_back(c);
    }
    return Status::OK();
  }

  /// A payload with bytes left over was produced by a different (newer?)
  /// encoder; reject instead of silently ignoring the tail.
  Status ExpectEnd(const char* what) const {
    if (pos_ != data_.size()) {
      return Status::InvalidArgument(std::string("wire payload for ") + what +
                                     " carries " +
                                     std::to_string(data_.size() - pos_) +
                                     " unexpected trailing bytes");
    }
    return Status::OK();
  }

 private:
  Status Truncated(const char* what) const {
    return Status::InvalidArgument(
        std::string("wire payload truncated reading ") + what);
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

void AppendString(std::string* out, std::string_view s) {
  AppendLE(out, static_cast<std::uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

void AppendClients(std::string* out, const std::vector<Client>& clients) {
  AppendLE(out, static_cast<std::uint32_t>(clients.size()));
  for (const Client& c : clients) {
    AppendLE(out, c.id);
    AppendLE(out, c.position.x);
    AppendLE(out, c.position.y);
    AppendLE(out, static_cast<std::int32_t>(c.position.level));
    AppendLE(out, c.partition);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

void AppendFrame(std::string* out, WireOpcode opcode, std::uint64_t request_id,
                 std::string_view payload, const TraceContext* trace_context) {
  const bool with_context =
      trace_context != nullptr && trace_context->valid();
  std::string context_bytes;
  if (with_context) {
    context_bytes.reserve(kWireTraceContextBytes);
    AppendLE(&context_bytes, trace_context->trace_id);
    AppendLE(&context_bytes, trace_context->parent_span_id);
    AppendLE(&context_bytes,
             static_cast<std::uint8_t>(trace_context->sampled ? 1 : 0));
    AppendLE(&context_bytes, trace_context->client_send_nanos);
  }
  AppendLE(out, kWireMagic);
  AppendLE(out, kWireVersion);
  AppendLE(out, static_cast<std::uint16_t>(opcode));
  AppendLE(out, request_id);
  AppendLE(out,
           static_cast<std::uint32_t>(payload.size() + context_bytes.size()));
  AppendLE(out, with_context ? kWireFlagTraceContext : std::uint32_t{0});
  AppendLE(out, Fnv1a64Continue(Fnv1a64(payload.data(), payload.size()),
                                context_bytes.data(), context_bytes.size()));
  out->append(payload.data(), payload.size());
  out->append(context_bytes);
}

Result<std::optional<WireFrame>> TryDecodeFrame(ByteRing* ring) {
  if (ring->size() < kWireHeaderBytes) return std::optional<WireFrame>();
  const char* p = ring->data();
  const std::uint32_t magic = LoadLE<std::uint32_t>(p);
  if (magic != kWireMagic) {
    return Status::InvalidArgument(
        "wire frame has bad magic (stream desynchronized)");
  }
  const std::uint16_t version = LoadLE<std::uint16_t>(p + 4);
  if (version != kWireVersion) {
    return Status::InvalidArgument("unsupported wire protocol version " +
                                   std::to_string(version));
  }
  const std::uint16_t opcode = LoadLE<std::uint16_t>(p + 6);
  const std::uint64_t request_id = LoadLE<std::uint64_t>(p + 8);
  const std::uint32_t payload_bytes = LoadLE<std::uint32_t>(p + 16);
  if (payload_bytes > kWireMaxPayloadBytes) {
    return Status::InvalidArgument(
        "wire frame payload of " + std::to_string(payload_bytes) +
        " bytes exceeds the " + std::to_string(kWireMaxPayloadBytes) +
        "-byte frame bound (oversized)");
  }
  const std::uint32_t flags = LoadLE<std::uint32_t>(p + 20);
  if ((flags & ~kWireFlagTraceContext) != 0) {
    return Status::InvalidArgument(
        "wire frame carries unknown extension flags 0x" +
        std::to_string(flags & ~kWireFlagTraceContext) +
        " (cannot determine frame layout)");
  }
  if ((flags & kWireFlagTraceContext) != 0 &&
      payload_bytes < kWireTraceContextBytes) {
    return Status::InvalidArgument(
        "wire frame flags a trace context but the payload region holds only " +
        std::to_string(payload_bytes) + " bytes");
  }
  const std::uint64_t checksum = LoadLE<std::uint64_t>(p + 24);
  if (ring->size() < kWireHeaderBytes + payload_bytes) {
    return std::optional<WireFrame>();  // incomplete; wait for more bytes
  }
  if (Fnv1a64(p + kWireHeaderBytes, payload_bytes) != checksum) {
    return Status::InvalidArgument("wire frame payload checksum mismatch");
  }
  WireFrame frame;
  frame.opcode = static_cast<WireOpcode>(opcode);
  frame.request_id = request_id;
  std::uint32_t message_bytes = payload_bytes;
  if ((flags & kWireFlagTraceContext) != 0) {
    // The context rides as a payload suffix so the checksum above already
    // vouched for it; peel it off before message decoders (which reject
    // trailing bytes) see the payload.
    const char* ctx =
        p + kWireHeaderBytes + payload_bytes - kWireTraceContextBytes;
    frame.trace_context.trace_id = LoadLE<std::uint64_t>(ctx);
    frame.trace_context.parent_span_id = LoadLE<std::uint64_t>(ctx + 8);
    frame.trace_context.sampled = LoadLE<std::uint8_t>(ctx + 16) != 0;
    frame.trace_context.client_send_nanos = LoadLE<std::uint64_t>(ctx + 17);
    frame.has_trace_context = true;
    message_bytes -= static_cast<std::uint32_t>(kWireTraceContextBytes);
  }
  frame.payload.assign(p + kWireHeaderBytes, message_bytes);
  ring->Consume(kWireHeaderBytes + payload_bytes);
  return std::optional<WireFrame>(std::move(frame));
}

void ByteRing::Append(const void* data, std::size_t n) {
  // Compact once the dead prefix dominates, so storage stays proportional to
  // the unconsumed bytes rather than the total stream length.
  if (head_ > 0 && head_ >= buffer_.size() - head_) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  const char* bytes = static_cast<const char*>(data);
  buffer_.insert(buffer_.end(), bytes, bytes + n);
}

void ByteRing::Consume(std::size_t n) {
  head_ += n;
  if (head_ == buffer_.size()) {
    buffer_.clear();
    head_ = 0;
  }
}

void ByteRing::Clear() {
  buffer_.clear();
  head_ = 0;
}

// ---------------------------------------------------------------------------
// Message encoders
// ---------------------------------------------------------------------------

std::string EncodeQueryFrame(std::uint64_t request_id, IflsObjective objective,
                             const WireQueryRequest& request,
                             const TraceContext* trace_context) {
  std::string payload;
  AppendString(&payload, request.venue_id);
  AppendLE(&payload, request.deadline_seconds);
  AppendClients(&payload, request.clients);
  std::string frame;
  AppendFrame(&frame, QueryOpcodeFor(objective), request_id, payload,
              trace_context);
  return frame;
}

std::string EncodeQueryResultFrame(std::uint64_t request_id,
                                   const WireQueryResponse& response) {
  std::string payload;
  AppendLE(&payload, static_cast<std::uint8_t>(response.found ? 1 : 0));
  AppendLE(&payload, response.answer);
  AppendLE(&payload, response.objective);
  AppendLE(&payload, response.snapshot_epoch);
  AppendLE(&payload, response.overlay_size);
  AppendLE(&payload, static_cast<std::uint8_t>(response.batched ? 1 : 0));
  AppendLE(&payload, response.batch_size);
  std::string frame;
  AppendFrame(&frame, WireOpcode::kQueryResult, request_id, payload);
  return frame;
}

std::string EncodeMutateFrame(std::uint64_t request_id,
                              const WireMutateRequest& request) {
  std::string payload;
  AppendString(&payload, request.venue_id);
  AppendLE(&payload, static_cast<std::uint8_t>(request.kind));
  AppendLE(&payload, request.partition);
  std::string frame;
  AppendFrame(&frame, WireOpcode::kMutate, request_id, payload);
  return frame;
}

std::string EncodeMutateResultFrame(std::uint64_t request_id,
                                    const WireMutateResponse& response) {
  std::string payload;
  AppendLE(&payload, response.applied_version);
  std::string frame;
  AppendFrame(&frame, WireOpcode::kMutateResult, request_id, payload);
  return frame;
}

std::string EncodeSubscribeFrame(std::uint64_t request_id,
                                 const WireSubscribeRequest& request) {
  std::string payload;
  AppendString(&payload, request.venue_id);
  AppendLE(&payload, request.tolerance);
  AppendClients(&payload, request.clients);
  std::string frame;
  AppendFrame(&frame, WireOpcode::kSubscribe, request_id, payload);
  return frame;
}

std::string EncodeSubscribeResultFrame(std::uint64_t request_id,
                                       const WireSubscribeResponse& response) {
  std::string payload;
  AppendLE(&payload, response.subscription_id);
  std::string frame;
  AppendFrame(&frame, WireOpcode::kSubscribeResult, request_id, payload);
  return frame;
}

std::string EncodeTickFrame(std::uint64_t request_id,
                            const WireTickRequest& request) {
  std::string payload;
  AppendString(&payload, request.venue_id);
  AppendLE(&payload, request.subscription_id);
  AppendLE(&payload, request.client);
  AppendLE(&payload, request.position.x);
  AppendLE(&payload, request.position.y);
  AppendLE(&payload, static_cast<std::int32_t>(request.position.level));
  AppendLE(&payload, request.partition);
  std::string frame;
  AppendFrame(&frame, WireOpcode::kSubscriptionTick, request_id, payload);
  return frame;
}

std::string EncodeUnsubscribeFrame(std::uint64_t request_id,
                                   const WireUnsubscribeRequest& request) {
  std::string payload;
  AppendString(&payload, request.venue_id);
  AppendLE(&payload, request.subscription_id);
  std::string frame;
  AppendFrame(&frame, WireOpcode::kUnsubscribe, request_id, payload);
  return frame;
}

std::string EncodePushFrame(std::uint64_t request_id,
                            const WireSubscriptionPush& push) {
  std::string payload;
  AppendLE(&payload, push.subscription_id);
  AppendLE(&payload, push.sequence);
  AppendLE(&payload, push.version);
  AppendLE(&payload, push.ticks_applied);
  AppendLE(&payload, push.latency_seconds);
  AppendLE(&payload, static_cast<std::uint8_t>(push.found ? 1 : 0));
  AppendLE(&payload, push.answer);
  AppendLE(&payload, push.objective);
  std::string frame;
  AppendFrame(&frame, WireOpcode::kSubscriptionPush, request_id, payload);
  return frame;
}

std::string EncodeErrorFrame(std::uint64_t request_id, const Status& status) {
  std::string payload;
  AppendLE(&payload, static_cast<std::uint16_t>(status.code()));
  AppendString(&payload, status.message());
  std::string frame;
  AppendFrame(&frame, WireOpcode::kError, request_id, payload);
  return frame;
}

std::string EncodeTextFrame(WireOpcode opcode, std::uint64_t request_id,
                            std::string_view text) {
  std::string payload;
  AppendString(&payload, text);
  std::string frame;
  AppendFrame(&frame, opcode, request_id, payload);
  return frame;
}

std::string EncodeEmptyFrame(WireOpcode opcode, std::uint64_t request_id) {
  std::string frame;
  AppendFrame(&frame, opcode, request_id, {});
  return frame;
}

std::string EncodePongFrame(std::uint64_t request_id,
                            const WirePongResponse& response) {
  std::string payload;
  AppendLE(&payload, response.server_recv_nanos);
  AppendLE(&payload, response.server_send_nanos);
  std::string frame;
  AppendFrame(&frame, WireOpcode::kPong, request_id, payload);
  return frame;
}

// ---------------------------------------------------------------------------
// Message decoders
// ---------------------------------------------------------------------------

Result<WireQueryRequest> DecodeQueryRequest(std::string_view payload) {
  PayloadReader reader(payload);
  WireQueryRequest request;
  IFLS_RETURN_NOT_OK(reader.ReadString("venue id", &request.venue_id));
  IFLS_RETURN_NOT_OK(reader.Read("deadline", &request.deadline_seconds));
  IFLS_RETURN_NOT_OK(reader.ReadClients(&request.clients));
  IFLS_RETURN_NOT_OK(reader.ExpectEnd("query request"));
  return request;
}

Result<WireQueryResponse> DecodeQueryResponse(std::string_view payload) {
  PayloadReader reader(payload);
  WireQueryResponse response;
  std::uint8_t found = 0;
  std::uint8_t batched = 0;
  IFLS_RETURN_NOT_OK(reader.Read("found flag", &found));
  IFLS_RETURN_NOT_OK(reader.Read("answer", &response.answer));
  IFLS_RETURN_NOT_OK(reader.Read("objective", &response.objective));
  IFLS_RETURN_NOT_OK(reader.Read("snapshot epoch", &response.snapshot_epoch));
  IFLS_RETURN_NOT_OK(reader.Read("overlay size", &response.overlay_size));
  IFLS_RETURN_NOT_OK(reader.Read("batched flag", &batched));
  IFLS_RETURN_NOT_OK(reader.Read("batch size", &response.batch_size));
  IFLS_RETURN_NOT_OK(reader.ExpectEnd("query response"));
  response.found = found != 0;
  response.batched = batched != 0;
  return response;
}

Result<WireMutateRequest> DecodeMutateRequest(std::string_view payload) {
  PayloadReader reader(payload);
  WireMutateRequest request;
  std::uint8_t kind = 0;
  IFLS_RETURN_NOT_OK(reader.ReadString("venue id", &request.venue_id));
  IFLS_RETURN_NOT_OK(reader.Read("mutation kind", &kind));
  IFLS_RETURN_NOT_OK(reader.Read("partition", &request.partition));
  IFLS_RETURN_NOT_OK(reader.ExpectEnd("mutate request"));
  if (kind > static_cast<std::uint8_t>(MutationKind::kRemoveCandidate)) {
    return Status::InvalidArgument("wire mutate request has unknown kind " +
                                   std::to_string(kind));
  }
  request.kind = static_cast<MutationKind>(kind);
  return request;
}

Result<WireMutateResponse> DecodeMutateResponse(std::string_view payload) {
  PayloadReader reader(payload);
  WireMutateResponse response;
  IFLS_RETURN_NOT_OK(reader.Read("applied version", &response.applied_version));
  IFLS_RETURN_NOT_OK(reader.ExpectEnd("mutate response"));
  return response;
}

Result<WireSubscribeRequest> DecodeSubscribeRequest(std::string_view payload) {
  PayloadReader reader(payload);
  WireSubscribeRequest request;
  IFLS_RETURN_NOT_OK(reader.ReadString("venue id", &request.venue_id));
  IFLS_RETURN_NOT_OK(reader.Read("tolerance", &request.tolerance));
  IFLS_RETURN_NOT_OK(reader.ReadClients(&request.clients));
  IFLS_RETURN_NOT_OK(reader.ExpectEnd("subscribe request"));
  return request;
}

Result<WireSubscribeResponse> DecodeSubscribeResponse(
    std::string_view payload) {
  PayloadReader reader(payload);
  WireSubscribeResponse response;
  IFLS_RETURN_NOT_OK(
      reader.Read("subscription id", &response.subscription_id));
  IFLS_RETURN_NOT_OK(reader.ExpectEnd("subscribe response"));
  return response;
}

Result<WireTickRequest> DecodeTickRequest(std::string_view payload) {
  PayloadReader reader(payload);
  WireTickRequest request;
  std::int32_t level = 0;
  IFLS_RETURN_NOT_OK(reader.ReadString("venue id", &request.venue_id));
  IFLS_RETURN_NOT_OK(reader.Read("subscription id", &request.subscription_id));
  IFLS_RETURN_NOT_OK(reader.Read("client id", &request.client));
  IFLS_RETURN_NOT_OK(reader.Read("position x", &request.position.x));
  IFLS_RETURN_NOT_OK(reader.Read("position y", &request.position.y));
  IFLS_RETURN_NOT_OK(reader.Read("position level", &level));
  IFLS_RETURN_NOT_OK(reader.Read("partition", &request.partition));
  IFLS_RETURN_NOT_OK(reader.ExpectEnd("tick request"));
  request.position.level = level;
  return request;
}

Result<WireUnsubscribeRequest> DecodeUnsubscribeRequest(
    std::string_view payload) {
  PayloadReader reader(payload);
  WireUnsubscribeRequest request;
  IFLS_RETURN_NOT_OK(reader.ReadString("venue id", &request.venue_id));
  IFLS_RETURN_NOT_OK(reader.Read("subscription id", &request.subscription_id));
  IFLS_RETURN_NOT_OK(reader.ExpectEnd("unsubscribe request"));
  return request;
}

Result<WireSubscriptionPush> DecodePush(std::string_view payload) {
  PayloadReader reader(payload);
  WireSubscriptionPush push;
  std::uint8_t found = 0;
  IFLS_RETURN_NOT_OK(reader.Read("subscription id", &push.subscription_id));
  IFLS_RETURN_NOT_OK(reader.Read("sequence", &push.sequence));
  IFLS_RETURN_NOT_OK(reader.Read("version", &push.version));
  IFLS_RETURN_NOT_OK(reader.Read("ticks applied", &push.ticks_applied));
  IFLS_RETURN_NOT_OK(reader.Read("latency", &push.latency_seconds));
  IFLS_RETURN_NOT_OK(reader.Read("found flag", &found));
  IFLS_RETURN_NOT_OK(reader.Read("answer", &push.answer));
  IFLS_RETURN_NOT_OK(reader.Read("objective", &push.objective));
  IFLS_RETURN_NOT_OK(reader.ExpectEnd("subscription push"));
  push.found = found != 0;
  return push;
}

Result<WireTextResponse> DecodeTextResponse(std::string_view payload) {
  PayloadReader reader(payload);
  WireTextResponse response;
  IFLS_RETURN_NOT_OK(reader.ReadString("text", &response.text));
  IFLS_RETURN_NOT_OK(reader.ExpectEnd("text response"));
  return response;
}

Result<WirePongResponse> DecodePong(std::string_view payload) {
  WirePongResponse response;
  if (payload.empty()) return response;  // PR 8 servers pong with no payload
  PayloadReader reader(payload);
  IFLS_RETURN_NOT_OK(
      reader.Read("server recv nanos", &response.server_recv_nanos));
  IFLS_RETURN_NOT_OK(
      reader.Read("server send nanos", &response.server_send_nanos));
  IFLS_RETURN_NOT_OK(reader.ExpectEnd("pong response"));
  return response;
}

Status DecodeErrorPayload(std::string_view payload) {
  PayloadReader reader(payload);
  std::uint16_t code = 0;
  std::string message;
  if (Status s = reader.Read("status code", &code); !s.ok()) {
    return Status::Internal("malformed wire error frame: " + s.message());
  }
  if (Status s = reader.ReadString("status message", &message); !s.ok()) {
    return Status::Internal("malformed wire error frame: " + s.message());
  }
  if (code == 0 ||
      code > static_cast<std::uint16_t>(StatusCode::kDeadlineExceeded)) {
    return Status::Internal("wire error frame carries unknown status code " +
                            std::to_string(code));
  }
  return Status(static_cast<StatusCode>(code), std::move(message));
}

}  // namespace ifls
