#ifndef IFLS_NET_CLIENT_H_
#define IFLS_NET_CLIENT_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/net/socket.h"
#include "src/net/wire.h"

namespace ifls {

/// A subscription registered over the wire: `request_id` is what pushes are
/// tagged with, `subscription_id` what Tick/Unsubscribe address.
struct WireSubscription {
  std::uint64_t request_id = 0;
  std::uint64_t subscription_id = 0;
};

/// One server-initiated push received on this connection, tagged with the
/// Subscribe request id it belongs to.
struct ReceivedPush {
  std::uint64_t request_id = 0;
  WireSubscriptionPush push;
};

/// Client side of the IFLS wire protocol over one blocking loopback
/// connection. Two usage styles:
///
///  - Blocking RPC: Query/Mutate/Subscribe/... send one frame and wait for
///    its response (frames for other request ids — pipelined responses,
///    subscription pushes — are buffered, not lost).
///  - Pipelined: SendQuery fires N requests without waiting, WaitQuery
///    collects each response by request id in any order. The server replies
///    out of submission order when socket-layer batching reorders work.
///
/// Not thread-safe: one IflsClient per thread (the load generator opens
/// many). Any transport-level failure (connection closed, corrupt stream)
/// poisons the client — every later call returns the same error.
class IflsClient {
 public:
  /// Connects to 127.0.0.1:`port`.
  static Result<std::unique_ptr<IflsClient>> Connect(std::uint16_t port);

  // ---- Blocking RPC surface --------------------------------------------

  Result<WireQueryResponse> Query(IflsObjective objective,
                                  const WireQueryRequest& request);
  Result<WireMutateResponse> Mutate(const WireMutateRequest& request);
  Result<WireSubscription> Subscribe(const WireSubscribeRequest& request);
  Status Tick(const WireTickRequest& request);
  Status Unsubscribe(const WireUnsubscribeRequest& request);
  /// Prometheus text exposition of the server process.
  Result<std::string> PullMetrics();
  /// Chrome trace-event JSON of the server process.
  Result<std::string> PullTrace();
  Status Ping();

  /// Estimates the clock offset between this process and the server from
  /// `rounds` NTP-style ping exchanges (client stamps t0/t3 around each
  /// ping, the pong carries the server's recv/send stamps t1/t2; the
  /// round with the smallest network-only RTT wins). The returned value is
  /// ready for MergeChromeTraces: add it to a server trace timestamp to
  /// express that instant on this process's trace clock. Fails against a
  /// PR 8 server whose pongs carry no timestamps.
  Result<std::int64_t> EstimateClockOffset(int rounds = 5);

  // ---- Pipelining ------------------------------------------------------

  /// Sends a query frame without waiting; returns its request id.
  Result<std::uint64_t> SendQuery(IflsObjective objective,
                                  const WireQueryRequest& request);
  /// Blocks until the response for `request_id` arrives (other responses
  /// are buffered for their own WaitQuery calls). A typed server error
  /// (kError frame) surfaces as that Status.
  Result<WireQueryResponse> WaitQuery(std::uint64_t request_id);

  // ---- Subscription pushes ---------------------------------------------

  /// Pops a buffered push, if any arrived while waiting for other frames.
  std::optional<ReceivedPush> TakePush();
  /// Blocks until a push arrives (draining buffered ones first).
  Result<ReceivedPush> WaitPush();

  /// The underlying socket (the load generator polls it).
  int fd() const { return fd_.get(); }

 private:
  explicit IflsClient(OwnedFd fd) : fd_(std::move(fd)) {}

  Status SendBytes(const std::string& bytes);
  /// Blocks until the frame answering `request_id` arrives; pushes and
  /// other responses are buffered. kError frames decode into their Status.
  Result<WireFrame> WaitFrame(std::uint64_t request_id);
  /// Reads at least one frame from the socket into the buffers.
  Status ReadMore();
  Status Poison(Status status);

  OwnedFd fd_;
  ByteRing ring_;
  std::uint64_t next_request_id_ = 1;
  /// Responses received while waiting for a different request id.
  std::map<std::uint64_t, WireFrame> pending_;
  std::deque<ReceivedPush> pushes_;
  Status poisoned_;  // first transport failure; sticky
};

}  // namespace ifls

#endif  // IFLS_NET_CLIENT_H_
