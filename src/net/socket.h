#ifndef IFLS_NET_SOCKET_H_
#define IFLS_NET_SOCKET_H_

#include <cstdint>

#include "src/common/status.h"

namespace ifls {

/// Thin RAII + error-mapping layer over the POSIX socket calls the net stack
/// uses. Everything returns typed Status; errno is folded into the message.

/// Owns one file descriptor; closes it on destruction. Move-only.
class OwnedFd {
 public:
  OwnedFd() = default;
  explicit OwnedFd(int fd) : fd_(fd) {}
  ~OwnedFd() { Reset(); }
  OwnedFd(OwnedFd&& other) noexcept : fd_(other.Release()) {}
  OwnedFd& operator=(OwnedFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }
  OwnedFd(const OwnedFd&) = delete;
  OwnedFd& operator=(const OwnedFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void Reset();

 private:
  int fd_ = -1;
};

/// Sets O_NONBLOCK on `fd`.
Status SetNonBlocking(int fd);

/// Sets TCP_NODELAY (the protocol writes whole frames; Nagle only adds
/// latency between a pipelined client's small frames).
Status SetNoDelay(int fd);

/// Creates a non-blocking listening TCP socket bound to 127.0.0.1:`port`
/// (port 0 picks a free port). On success `*bound_port` holds the actual
/// port. SO_REUSEADDR is set so restarted servers rebind immediately.
Result<OwnedFd> CreateTcpListener(std::uint16_t port,
                                  std::uint16_t* bound_port);

/// Blocking connect to 127.0.0.1:`port`; the returned socket is left in
/// blocking mode (callers flip it with SetNonBlocking when needed).
Result<OwnedFd> ConnectTcp(std::uint16_t port);

/// Raises RLIMIT_NOFILE to at least `want` descriptors (capped at the hard
/// limit). The network bench opens both ends of >=1k connections in one
/// process, which blows through the common 1024 default.
Status EnsureFdLimit(std::uint64_t want);

}  // namespace ifls

#endif  // IFLS_NET_SOCKET_H_
