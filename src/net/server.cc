#include "src/net/server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string_view>
#include <utility>

#include "src/common/trace.h"
#include "src/core/batch_engine.h"
#include "src/service/cost_ledger.h"

namespace ifls {

/// One accepted connection. The event-loop thread owns the receive side
/// (ring, epoll registration) without locks; the outbound buffer is the one
/// shared piece — dispatcher threads and service callbacks append under
/// out_mu, the loop flushes.
struct IflsServer::Connection {
  OwnedFd fd;

  // Loop thread only.
  ByteRing ring;
  bool want_write = false;  // EPOLLOUT armed
  /// Protocol sniffed from the connection's first four bytes: binary wire
  /// frames (magic "IFLW") or the HTTP admin plane ("GET ").
  enum class Mode { kUnknown, kBinary, kHttp };
  Mode mode = Mode::kUnknown;
  /// HTTP connections serve one response then close; set before the
  /// response is enqueued, honored by FlushOut once the buffer drains.
  bool close_when_drained = false;

  std::mutex out_mu;
  std::string out;          // encoded frames awaiting the socket
  std::size_t out_head = 0; // bytes of `out` already written
  bool closed = false;

  /// Wire subscriptions living on this connection: id -> routing venue.
  /// The Subscription shared_ptr pins nothing extra (the service owns it
  /// too); it is kept for observability and dropped on close/unsubscribe.
  std::mutex subs_mu;
  std::map<std::uint64_t,
           std::pair<std::string, std::shared_ptr<Subscription>>>
      subs;
};

struct IflsServer::NetShared {
  /// Dispatcher/callback -> loop handshake: append under mu, then poke the
  /// eventfd so the loop wakes and flushes.
  std::mutex mu;
  std::vector<std::shared_ptr<Connection>> flush_queue;
  OwnedFd wake;

  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> connections_active{0};
  std::atomic<std::uint64_t> frames_received{0};
  std::atomic<std::uint64_t> queries{0};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> batched_queries{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> pushes_sent{0};
  std::atomic<std::uint64_t> http_requests{0};
};

void IflsServer::EnqueueFrame(const std::shared_ptr<NetShared>& shared,
                              const std::shared_ptr<Connection>& conn,
                              std::string frame) {
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    if (conn->closed) return;
    conn->out.append(frame);
  }
  {
    std::lock_guard<std::mutex> lock(shared->mu);
    shared->flush_queue.push_back(conn);
  }
  std::uint64_t one = 1;
  // A full eventfd counter (never in practice) only delays the flush to the
  // next natural wake; ignore the short-write case.
  [[maybe_unused]] ssize_t n =
      ::write(shared->wake.get(), &one, sizeof(one));
}

void IflsServer::EnqueueError(const std::shared_ptr<NetShared>& shared,
                              const std::shared_ptr<Connection>& conn,
                              std::uint64_t request_id, const Status& status) {
  shared->errors.fetch_add(1, std::memory_order_relaxed);
  if (status.code() == StatusCode::kUnavailable) {
    shared->rejected.fetch_add(1, std::memory_order_relaxed);
  }
  EnqueueFrame(shared, conn, EncodeErrorFrame(request_id, status));
}

namespace {

WireQueryResponse MakeQueryResponse(const IflsResult& result,
                                    std::uint64_t snapshot_epoch,
                                    std::uint64_t overlay_size, bool batched,
                                    std::uint32_t batch_size) {
  WireQueryResponse response;
  response.found = result.found;
  response.answer = result.answer;
  response.objective = result.objective;
  response.snapshot_epoch = snapshot_epoch;
  response.overlay_size = overlay_size;
  response.batched = batched;
  response.batch_size = batch_size;
  return response;
}

std::string HttpResponse(int code, const char* reason,
                         const char* content_type, const std::string& body) {
  std::string out = "HTTP/1.0 " + std::to_string(code) + " " + reason +
                    "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size()) +
         "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

void AppendJsonEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

Result<std::unique_ptr<IflsServer>> IflsServer::Create(
    std::shared_ptr<IflsService> service, const ServerOptions& options) {
  if (service == nullptr) {
    return Status::InvalidArgument("IflsServer::Create: null service");
  }
  std::unique_ptr<IflsServer> server(
      new IflsServer(std::move(service), nullptr, options));
  IFLS_RETURN_NOT_OK(server->Start());
  return server;
}

Result<std::unique_ptr<IflsServer>> IflsServer::CreateFleet(
    std::shared_ptr<VenueRouter> router, const ServerOptions& options) {
  if (router == nullptr) {
    return Status::InvalidArgument("IflsServer::CreateFleet: null router");
  }
  std::unique_ptr<IflsServer> server(
      new IflsServer(nullptr, std::move(router), options));
  IFLS_RETURN_NOT_OK(server->Start());
  return server;
}

IflsServer::IflsServer(std::shared_ptr<IflsService> service,
                       std::shared_ptr<VenueRouter> router,
                       ServerOptions options)
    : service_(std::move(service)),
      router_(std::move(router)),
      options_(std::move(options)),
      shared_(std::make_shared<NetShared>()) {}

IflsServer::~IflsServer() { Stop(); }

Status IflsServer::Start() {
  shared_->wake = OwnedFd(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
  if (!shared_->wake.valid()) {
    return Status::Internal(std::string("eventfd: ") + std::strerror(errno));
  }
  IFLS_ASSIGN_OR_RETURN(listener_, CreateTcpListener(options_.port, &port_));
  epoll_ = OwnedFd(::epoll_create1(EPOLL_CLOEXEC));
  if (!epoll_.valid()) {
    return Status::Internal(std::string("epoll_create1: ") +
                            std::strerror(errno));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listener_.get();
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, listener_.get(), &ev) < 0) {
    return Status::Internal(std::string("epoll_ctl(listener): ") +
                            std::strerror(errno));
  }
  ev.data.fd = shared_->wake.get();
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, shared_->wake.get(), &ev) <
      0) {
    return Status::Internal(std::string("epoll_ctl(wake): ") +
                            std::strerror(errno));
  }
  RegisterMetrics();
  int dispatchers = options_.num_dispatchers > 0 ? options_.num_dispatchers : 1;
  dispatchers_.reserve(static_cast<std::size_t>(dispatchers));
  for (int i = 0; i < dispatchers; ++i) {
    dispatchers_.emplace_back([this] { DispatcherThread(); });
  }
  loop_ = std::thread([this] { LoopThread(); });
  started_ = true;
  return Status::OK();
}

void IflsServer::Stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  stopping_.store(true, std::memory_order_release);
  std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n =
      ::write(shared_->wake.get(), &one, sizeof(one));
  if (loop_.joinable()) loop_.join();
  // Cleanup jobs posted by the loop's teardown (unsubscribes) drain before
  // the stop flag lets the dispatchers exit.
  {
    std::lock_guard<std::mutex> lock(dispatch_mu_);
    dispatch_stop_ = true;
  }
  dispatch_cv_.notify_all();
  for (std::thread& t : dispatchers_) {
    if (t.joinable()) t.join();
  }
  dispatchers_.clear();
  metric_registrations_.clear();
}

ServerMetrics IflsServer::Metrics() const {
  ServerMetrics m;
  m.connections_accepted =
      shared_->connections_accepted.load(std::memory_order_relaxed);
  m.connections_active =
      shared_->connections_active.load(std::memory_order_relaxed);
  m.frames_received = shared_->frames_received.load(std::memory_order_relaxed);
  m.queries = shared_->queries.load(std::memory_order_relaxed);
  m.batches = shared_->batches.load(std::memory_order_relaxed);
  m.batched_queries = shared_->batched_queries.load(std::memory_order_relaxed);
  m.rejected = shared_->rejected.load(std::memory_order_relaxed);
  m.errors = shared_->errors.load(std::memory_order_relaxed);
  m.pushes_sent = shared_->pushes_sent.load(std::memory_order_relaxed);
  m.http_requests = shared_->http_requests.load(std::memory_order_relaxed);
  return m;
}

void IflsServer::RegisterMetrics() {
  // Process-wide series (no instance label): multiple servers in one
  // process accumulate, like the ifls_query_* rollups.
  auto& registry = MetricsRegistry::Global();
  std::shared_ptr<NetShared> shared = shared_;
  metric_registrations_.push_back(registry.RegisterCallbackCounter(
      "ifls_net_rejected_total", "", [shared] {
        return shared->rejected.load(std::memory_order_relaxed);
      }));
  metric_registrations_.push_back(registry.RegisterCallbackCounter(
      "ifls_net_frames_total", "", [shared] {
        return shared->frames_received.load(std::memory_order_relaxed);
      }));
  metric_registrations_.push_back(registry.RegisterCallbackCounter(
      "ifls_net_batches_total", "", [shared] {
        return shared->batches.load(std::memory_order_relaxed);
      }));
  metric_registrations_.push_back(registry.RegisterCallbackCounter(
      "ifls_net_pushes_total", "", [shared] {
        return shared->pushes_sent.load(std::memory_order_relaxed);
      }));
  metric_registrations_.push_back(registry.RegisterCallbackGauge(
      "ifls_net_connections", "", [shared] {
        return static_cast<double>(
            shared->connections_active.load(std::memory_order_relaxed));
      }));
  metric_registrations_.push_back(registry.RegisterCallbackCounter(
      "ifls_net_http_requests_total", "", [shared] {
        return shared->http_requests.load(std::memory_order_relaxed);
      }));
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

void IflsServer::LoopThread() {
  constexpr int kMaxEvents = 256;
  epoll_event events[kMaxEvents];
  while (!stopping_.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(epoll_.get(), events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listener_.get()) {
        AcceptReady();
        continue;
      }
      if (fd == shared_->wake.get()) {
        std::uint64_t drained;
        while (::read(shared_->wake.get(), &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // closed earlier this cycle
      std::shared_ptr<Connection> conn = it->second;
      if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
        CloseConnection(conn);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) HandleReadable(conn);
      if ((events[i].events & EPOLLOUT) != 0 &&
          conns_.count(fd) != 0) {
        FlushOut(conn);
      }
    }
    // End of cycle: everything decoded above coalesces here — the whole
    // point of socket-layer batching is that concurrently-arrived queries
    // share one batch run.
    FlushCycleQueries();
    FlushPendingWrites();
  }
  // Teardown: close every connection and queue their unsubscribes.
  std::vector<std::shared_ptr<Connection>> open;
  open.reserve(conns_.size());
  for (auto& [fd, conn] : conns_) open.push_back(conn);
  for (auto& conn : open) CloseConnection(conn);
  conns_.clear();
}

void IflsServer::AcceptReady() {
  while (true) {
    int fd = ::accept4(listener_.get(), nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // transient accept failure; the listener stays armed
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = OwnedFd(fd);
    (void)SetNoDelay(fd);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd, &ev) < 0) {
      continue;  // conn (and fd) die here
    }
    conns_.emplace(fd, std::move(conn));
    shared_->connections_accepted.fetch_add(1, std::memory_order_relaxed);
    shared_->connections_active.fetch_add(1, std::memory_order_relaxed);
  }
}

void IflsServer::HandleReadable(const std::shared_ptr<Connection>& conn) {
  char buf[64 * 1024];
  while (true) {
    ssize_t n = ::read(conn->fd.get(), buf, sizeof(buf));
    if (n > 0) {
      conn->ring.Append(buf, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {
      CloseConnection(conn);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConnection(conn);
    return;
  }
  DrainFrames(conn);
}

void IflsServer::DrainFrames(const std::shared_ptr<Connection>& conn) {
  // Protocol sniff on the first four bytes: binary frames always start with
  // the magic "IFLW", so `GET ` can only be an HTTP admin request. Anything
  // else falls to the binary decoder, which rejects it as a bad envelope.
  if (conn->mode == Connection::Mode::kUnknown) {
    if (conn->ring.size() < 4) return;  // not enough to sniff yet
    conn->mode = std::memcmp(conn->ring.data(), "GET ", 4) == 0
                     ? Connection::Mode::kHttp
                     : Connection::Mode::kBinary;
  }
  if (conn->mode == Connection::Mode::kHttp) {
    HandleHttp(conn);
    return;
  }
  while (true) {
    Result<std::optional<WireFrame>> decoded = TryDecodeFrame(&conn->ring);
    if (!decoded.ok()) {
      // Unsynchronized stream: best-effort typed error, then drop the
      // connection (the error may or may not flush before the RST).
      EnqueueError(shared_, conn, 0, decoded.status());
      FlushOut(conn);
      CloseConnection(conn);
      return;
    }
    if (!decoded.value().has_value()) return;  // incomplete: wait for bytes
    shared_->frames_received.fetch_add(1, std::memory_order_relaxed);
    HandleFrame(conn, std::move(*decoded.value()));
    // HandleFrame may close the connection (protocol violation).
    std::lock_guard<std::mutex> lock(conn->out_mu);
    if (conn->closed) return;
  }
}

void IflsServer::HandleFrame(const std::shared_ptr<Connection>& conn,
                             WireFrame frame) {
  const std::uint64_t id = frame.request_id;
  if (IsQueryOpcode(frame.opcode)) {
    Result<WireQueryRequest> request = DecodeQueryRequest(frame.payload);
    if (!request.ok()) {
      EnqueueError(shared_, conn, id, request.status());
      return;
    }
    shared_->queries.fetch_add(1, std::memory_order_relaxed);
    PendingNetQuery pending;
    pending.conn = conn;
    pending.request_id = id;
    pending.objective = ObjectiveForQueryOpcode(frame.opcode);
    pending.request = std::move(request).value();
    pending.has_trace = frame.has_trace_context;
    pending.trace = frame.trace_context;
    cycle_queries_.push_back(std::move(pending));
    return;
  }
  switch (frame.opcode) {
    case WireOpcode::kPing: {
      // The pong carries receive/send stamps for the client's NTP-style
      // clock-offset estimate. Ping handling is synchronous on the loop
      // thread, so the two stamps bracket only the encode; the client
      // attributes the rest of the RTT to the network, which is exactly
      // what the offset math assumes.
      WirePongResponse pong;
      pong.server_recv_nanos = TraceNowNanos();
      pong.server_send_nanos = TraceNowNanos();
      EnqueueFrame(shared_, conn, EncodePongFrame(id, pong));
      return;
    }
    case WireOpcode::kMetricsPull:
      // Exposition is a registry walk — cheap enough to stay on the loop.
      EnqueueFrame(shared_, conn,
                   EncodeTextFrame(WireOpcode::kMetricsText, id,
                                   DumpMetricsText()));
      return;
    case WireOpcode::kTracePull: {
      std::ostringstream out;
      Status status = TraceRecorder::Global().ExportChromeTrace(out);
      if (!status.ok()) {
        EnqueueError(shared_, conn, id, status);
      } else {
        EnqueueFrame(shared_, conn,
                     EncodeTextFrame(WireOpcode::kTraceJson, id, out.str()));
      }
      return;
    }
    case WireOpcode::kMutate: {
      Result<WireMutateRequest> request = DecodeMutateRequest(frame.payload);
      if (!request.ok()) {
        EnqueueError(shared_, conn, id, request.status());
        return;
      }
      if (!Dispatch([this, conn, id, req = std::move(request).value()]() mutable {
            RunMutate(conn, id, std::move(req));
          })) {
        EnqueueError(shared_, conn, id,
                     Status::Unavailable("dispatch queue full"));
      }
      return;
    }
    case WireOpcode::kSubscribe: {
      Result<WireSubscribeRequest> request =
          DecodeSubscribeRequest(frame.payload);
      if (!request.ok()) {
        EnqueueError(shared_, conn, id, request.status());
        return;
      }
      if (!Dispatch([this, conn, id, req = std::move(request).value()]() mutable {
            RunSubscribe(conn, id, std::move(req));
          })) {
        EnqueueError(shared_, conn, id,
                     Status::Unavailable("dispatch queue full"));
      }
      return;
    }
    case WireOpcode::kSubscriptionTick: {
      Result<WireTickRequest> request = DecodeTickRequest(frame.payload);
      if (!request.ok()) {
        EnqueueError(shared_, conn, id, request.status());
        return;
      }
      if (!Dispatch([this, conn, id, req = std::move(request).value()]() mutable {
            RunTick(conn, id, std::move(req));
          })) {
        EnqueueError(shared_, conn, id,
                     Status::Unavailable("dispatch queue full"));
      }
      return;
    }
    case WireOpcode::kUnsubscribe: {
      Result<WireUnsubscribeRequest> request =
          DecodeUnsubscribeRequest(frame.payload);
      if (!request.ok()) {
        EnqueueError(shared_, conn, id, request.status());
        return;
      }
      if (!Dispatch([this, conn, id, req = std::move(request).value()]() mutable {
            RunUnsubscribe(conn, id, std::move(req));
          })) {
        EnqueueError(shared_, conn, id,
                     Status::Unavailable("dispatch queue full"));
      }
      return;
    }
    default:
      // Response opcodes (or future request kinds) are not valid here; the
      // envelope was sound, so answer typed and keep the stream.
      EnqueueError(shared_, conn, id,
                   Status::InvalidArgument(
                       std::string("unexpected opcode at server: ") +
                       WireOpcodeName(frame.opcode)));
      return;
  }
}

void IflsServer::HandleHttp(const std::shared_ptr<Connection>& conn) {
  // One request per connection, HTTP/1.0 style: wait for the header
  // terminator, answer, close. Everything served here is a registry walk
  // or a small JSON render — cheap enough to stay on the loop thread, like
  // the binary kMetricsPull path.
  const std::string_view buf(conn->ring.data(), conn->ring.size());
  const std::size_t end = buf.find("\r\n\r\n");
  if (end == std::string_view::npos) {
    constexpr std::size_t kMaxRequestBytes = 8192;
    if (buf.size() > kMaxRequestBytes) {
      conn->ring.Clear();
      conn->close_when_drained = true;
      EnqueueFrame(shared_, conn,
                   HttpResponse(400, "Bad Request", "text/plain",
                                "request too large\n"));
      FlushOut(conn);
    }
    return;  // incomplete request: wait for more bytes
  }
  shared_->http_requests.fetch_add(1, std::memory_order_relaxed);
  const std::string_view request_line = buf.substr(0, buf.find("\r\n"));
  std::string response;
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 = request_line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1 ||
      request_line.substr(0, sp1) != "GET" ||
      request_line.substr(sp2 + 1, 5) != "HTTP/") {
    response = HttpResponse(400, "Bad Request", "text/plain",
                            "malformed request line\n");
  } else {
    std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
    target = target.substr(0, target.find('?'));
    if (target == "/metrics") {
      response = HttpResponse(
          200, "OK", "text/plain; version=0.0.4; charset=utf-8",
          DumpMetricsText());
    } else if (target == "/healthz") {
      response = HttpResponse(200, "OK", "text/plain", "ok\n");
    } else if (target == "/venues") {
      response = HttpResponse(200, "OK", "application/json", VenuesJson());
    } else if (target == "/slow") {
      response = HttpResponse(200, "OK", "application/json",
                              QueryCostLedger::Global().SlowQueriesJson());
    } else {
      response =
          HttpResponse(404, "Not Found", "text/plain", "not found\n");
    }
  }
  conn->ring.Clear();
  conn->close_when_drained = true;
  EnqueueFrame(shared_, conn, std::move(response));
  FlushOut(conn);
}

std::string IflsServer::VenuesJson() const {
  std::string out = "{\n  \"venues\": [";
  bool first = true;
  const auto emit = [&out, &first](const VenueEntryStats& v) {
    out += first ? "\n    {" : ",\n    {";
    first = false;
    out += "\"venue_id\": ";
    AppendJsonEscaped(&out, v.venue_id);
    out += v.resident ? ", \"resident\": true" : ", \"resident\": false";
    out += ", \"resident_bytes\": " + std::to_string(v.resident_bytes);
    out += ", \"mapped_bytes\": " + std::to_string(v.mapped_bytes);
    out += ", \"loads\": " + std::to_string(v.loads);
    out += ", \"evictions\": " + std::to_string(v.evictions);
    out += "}";
  };
  if (router_ != nullptr) {
    for (const VenueEntryStats& v : router_->VenueStats()) emit(v);
  } else {
    // Single-venue mode: synthesize one always-resident entry so the
    // endpoint's shape does not depend on the serving mode.
    VenueEntryStats v;
    v.venue_id = service_->options().venue_label;
    v.resident = true;
    v.loads = 1;
    emit(v);
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

void IflsServer::FlushCycleQueries() {
  if (cycle_queries_.empty()) return;
  std::vector<PendingNetQuery> cycle;
  cycle.swap(cycle_queries_);
  if (!options_.coalesce_batches) {
    for (PendingNetQuery& q : cycle) {
      std::shared_ptr<Connection> conn = q.conn;
      std::uint64_t id = q.request_id;
      if (!Dispatch([this, query = std::move(q)]() mutable {
            RunSingleQuery(std::move(query));
          })) {
        EnqueueError(shared_, conn, id,
                     Status::Unavailable("dispatch queue full"));
      }
    }
    return;
  }
  // Coalesce per venue: a batch only ever touches one venue's service, so
  // routing happens once and the solver batch shares its pinned state.
  std::map<std::string, std::vector<PendingNetQuery>> by_venue;
  for (PendingNetQuery& q : cycle) {
    by_venue[q.request.venue_id].push_back(std::move(q));
  }
  for (auto& [venue_id, batch] : by_venue) {
    // Keep conn/id pairs for the rejection path before the batch moves.
    std::vector<std::pair<std::shared_ptr<Connection>, std::uint64_t>> who;
    who.reserve(batch.size());
    for (const PendingNetQuery& q : batch) who.emplace_back(q.conn, q.request_id);
    if (!Dispatch([this, vid = venue_id, b = std::move(batch)]() mutable {
          RunBatch(std::move(vid), std::move(b));
        })) {
      for (auto& [conn, id] : who) {
        EnqueueError(shared_, conn, id,
                     Status::Unavailable("dispatch queue full"));
      }
    }
  }
}

void IflsServer::CloseConnection(const std::shared_ptr<Connection>& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    if (conn->closed) return;
    conn->closed = true;
  }
  shared_->connections_active.fetch_sub(1, std::memory_order_relaxed);
  ::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, conn->fd.get(), nullptr);
  conns_.erase(conn->fd.get());
  conn->fd.Reset();
  // Tear down the connection's standing subscriptions so the service stops
  // pushing into a dead stream. Forced past the capacity bound: cleanup
  // must not be sheddable.
  std::map<std::uint64_t, std::pair<std::string, std::shared_ptr<Subscription>>>
      subs;
  {
    std::lock_guard<std::mutex> lock(conn->subs_mu);
    subs.swap(conn->subs);
  }
  for (auto& [sub_id, entry] : subs) {
    std::string venue_id = entry.first;
    std::uint64_t id = sub_id;
    (void)Dispatch(
        [this, venue_id = std::move(venue_id), id] {
          Result<std::shared_ptr<IflsService>> svc = Route(venue_id);
          if (svc.ok()) (void)svc.value()->Unsubscribe(id);
        },
        /*force=*/true);
  }
}

void IflsServer::FlushPendingWrites() {
  std::vector<std::shared_ptr<Connection>> pending;
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    pending.swap(shared_->flush_queue);
  }
  for (const auto& conn : pending) {
    if (conns_.count(conn->fd.get()) != 0) FlushOut(conn);
  }
}

void IflsServer::FlushOut(const std::shared_ptr<Connection>& conn) {
  bool drained = false;
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    if (conn->closed) return;
    while (conn->out_head < conn->out.size()) {
      ssize_t n = ::write(conn->fd.get(), conn->out.data() + conn->out_head,
                          conn->out.size() - conn->out_head);
      if (n > 0) {
        conn->out_head += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      break;  // EAGAIN (socket full) or a real error surfacing via epoll
    }
    if (conn->out_head >= conn->out.size()) {
      conn->out.clear();
      conn->out_head = 0;
      drained = true;
    }
  }
  if (drained && conn->close_when_drained) {
    // HTTP admin plane: the whole response is out, honor Connection: close.
    CloseConnection(conn);
    return;
  }
  if (drained == conn->want_write) {
    // Toggle EPOLLOUT: armed while a partial write is pending, off once the
    // buffer drains (level-triggered EPOLLOUT would spin otherwise).
    conn->want_write = !drained;
    epoll_event ev{};
    ev.events = EPOLLIN | (conn->want_write ? static_cast<std::uint32_t>(EPOLLOUT) : 0u);
    ev.data.fd = conn->fd.get();
    ::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, conn->fd.get(), &ev);
  }
}

// ---------------------------------------------------------------------------
// Dispatchers
// ---------------------------------------------------------------------------

bool IflsServer::Dispatch(std::function<void()> job, bool force) {
  {
    std::lock_guard<std::mutex> lock(dispatch_mu_);
    if (dispatch_stop_) return false;
    if (!force && (stopping_.load(std::memory_order_acquire) ||
                   dispatch_jobs_.size() >= options_.dispatch_queue_capacity)) {
      return false;
    }
    dispatch_jobs_.push_back(std::move(job));
  }
  dispatch_cv_.notify_one();
  return true;
}

void IflsServer::DispatcherThread() {
  while (true) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(dispatch_mu_);
      dispatch_cv_.wait(lock, [this] {
        return dispatch_stop_ || !dispatch_jobs_.empty();
      });
      if (dispatch_jobs_.empty()) return;  // stop && drained
      job = std::move(dispatch_jobs_.front());
      dispatch_jobs_.pop_front();
    }
    job();
  }
}

Result<std::shared_ptr<IflsService>> IflsServer::Route(
    const std::string& venue_id) {
  if (service_ != nullptr) {
    if (!venue_id.empty()) {
      return Status::InvalidArgument(
          "single-venue server: venue_id must be empty, got \"" + venue_id +
          "\"");
    }
    return service_;
  }
  return router_->Service(venue_id);
}

void IflsServer::RunBatch(std::string venue_id,
                          std::vector<PendingNetQuery> batch) {
  Result<std::shared_ptr<IflsService>> routed = Route(venue_id);
  if (!routed.ok()) {
    for (const PendingNetQuery& q : batch) {
      EnqueueError(shared_, q.conn, q.request_id, routed.status());
    }
    return;
  }
  std::shared_ptr<IflsService> service = std::move(routed).value();
  // Pin one state for the whole batch — mirrors Execute()'s single acquire,
  // and the engine's solver options are copied from the service, so every
  // answer is bit-identical to the in-process path.
  std::shared_ptr<const ServingState> state = service->AcquireState();
  BatchEngineOptions engine_options;
  engine_options.num_threads = options_.batch_threads;
  engine_options.minmax = service->options().solvers.minmax;
  engine_options.mindist = service->options().solvers.mindist;
  engine_options.maxsum = service->options().solvers.maxsum;
  BatchQueryEngine engine(engine_options);

  std::vector<BatchQuery> queries;
  queries.reserve(batch.size());
  for (PendingNetQuery& q : batch) {
    BatchQuery bq;
    bq.objective = q.objective;
    bq.context.oracle = &state->oracle();
    bq.context.existing = state->overlay.effective_existing();
    bq.context.candidates = state->overlay.effective_candidates();
    bq.context.clients = std::move(q.request.clients);
    queries.push_back(std::move(bq));
  }
  std::vector<BatchQueryOutcome> outcomes = engine.Run(queries);
  shared_->batches.fetch_add(1, std::memory_order_relaxed);
  shared_->batched_queries.fetch_add(batch.size(), std::memory_order_relaxed);

  const std::uint64_t epoch = state->snapshot->epoch();
  const std::uint64_t overlay_size =
      static_cast<std::uint64_t>(state->overlay.delta().size());
  // The ledger label: the explicit routing id in fleet mode, the service's
  // own label in single-venue mode (where venue_id is required empty).
  const std::string& ledger_venue =
      venue_id.empty() ? service->options().venue_label : venue_id;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (!outcomes[i].status.ok()) {
      EnqueueError(shared_, batch[i].conn, batch[i].request_id,
                   outcomes[i].status);
      continue;
    }
    // Coalesced queries bypass the admission queue, so the service's own
    // ledger hook never sees them; attribute them here. queue_seconds stays
    // 0 (dispatch-queue wait is not measured per query on this path) and no
    // spans are captured — batch runs don't adopt per-query trace scopes;
    // callers who want a merged distributed trace run against a
    // no-coalesce server (DESIGN.md §15).
    QueryCostSample sample;
    sample.venue = ledger_venue;
    sample.objective = batch[i].objective;
    if (batch[i].has_trace) {
      sample.trace_id = batch[i].trace.trace_id;
      sample.parent_span_id = batch[i].trace.parent_span_id;
    }
    sample.solve_seconds = outcomes[i].result.stats.elapsed_seconds;
    sample.stats = outcomes[i].result.stats;
    QueryCostLedger::Global().RecordQuery(sample, /*capture_spans=*/false);
    EnqueueFrame(shared_, batch[i].conn,
                 EncodeQueryResultFrame(
                     batch[i].request_id,
                     MakeQueryResponse(outcomes[i].result, epoch, overlay_size,
                                       /*batched=*/true,
                                       static_cast<std::uint32_t>(
                                           batch.size()))));
  }
}

void IflsServer::RunSingleQuery(PendingNetQuery query) {
  Result<std::shared_ptr<IflsService>> routed = Route(query.request.venue_id);
  if (!routed.ok()) {
    EnqueueError(shared_, query.conn, query.request_id, routed.status());
    return;
  }
  std::shared_ptr<IflsService> service = std::move(routed).value();
  ServiceRequest request;
  request.objective = query.objective;
  request.clients = std::move(query.request.clients);
  request.deadline_seconds = query.request.deadline_seconds;
  if (query.has_trace) {
    // Adopt the caller's context: the service's queue/solve spans land
    // under the client's trace id with the client's sampling verdict.
    request.trace_id = query.trace.trace_id;
    request.trace_sampled = query.trace.sampled;
    request.parent_span_id = query.trace.parent_span_id;
  }
  std::shared_ptr<NetShared> shared = shared_;
  std::shared_ptr<Connection> conn = query.conn;
  const std::uint64_t id = query.request_id;
  // The completion callback owns everything it touches via shared_ptr: it
  // may fire on a service worker after this server object is gone.
  Status admitted = service->SubmitQueryAsync(
      std::move(request), [shared, conn, id](ServiceReply reply) {
        if (!reply.status.ok()) {
          EnqueueError(shared, conn, id, reply.status);
          return;
        }
        EnqueueFrame(shared, conn,
                     EncodeQueryResultFrame(
                         id, MakeQueryResponse(
                                 reply.result, reply.snapshot_epoch,
                                 static_cast<std::uint64_t>(reply.overlay_size),
                                 /*batched=*/false, /*batch_size=*/0)));
      });
  if (!admitted.ok()) {
    // Shed at admission: the callback did not and will not fire.
    EnqueueError(shared_, conn, id, admitted);
  }
}

void IflsServer::RunMutate(std::shared_ptr<Connection> conn,
                           std::uint64_t request_id,
                           WireMutateRequest request) {
  Result<std::shared_ptr<IflsService>> routed = Route(request.venue_id);
  if (!routed.ok()) {
    EnqueueError(shared_, conn, request_id, routed.status());
    return;
  }
  Mutation mutation;
  mutation.kind = request.kind;
  mutation.partition = request.partition;
  std::uint64_t applied_version = 0;
  Status status = routed.value()->Mutate(mutation, &applied_version);
  if (!status.ok()) {
    EnqueueError(shared_, conn, request_id, status);
    return;
  }
  WireMutateResponse response;
  response.applied_version = applied_version;
  EnqueueFrame(shared_, conn, EncodeMutateResultFrame(request_id, response));
}

void IflsServer::RunSubscribe(std::shared_ptr<Connection> conn,
                              std::uint64_t request_id,
                              WireSubscribeRequest request) {
  Result<std::shared_ptr<IflsService>> routed = Route(request.venue_id);
  if (!routed.ok()) {
    EnqueueError(shared_, conn, request_id, routed.status());
    return;
  }
  SubscriptionOptions sub_options;
  sub_options.tolerance = request.tolerance;
  std::shared_ptr<NetShared> shared = shared_;
  // Runs on service pump threads with the monitor lock held: encode and
  // enqueue only, never re-enter the service, never touch `this`.
  SubscriptionCallback callback = [shared, conn,
                                   request_id](const SubscriptionPush& push) {
    WireSubscriptionPush wire;
    wire.subscription_id = push.subscription_id;
    wire.sequence = push.sequence;
    wire.version = push.version;
    wire.ticks_applied = push.ticks_applied;
    wire.latency_seconds = push.latency_seconds;
    wire.found = push.result.found;
    wire.answer = push.result.answer;
    wire.objective = push.result.objective;
    shared->pushes_sent.fetch_add(1, std::memory_order_relaxed);
    EnqueueFrame(shared, conn, EncodePushFrame(request_id, wire));
  };
  Result<std::shared_ptr<Subscription>> subscribed = routed.value()->Subscribe(
      request.clients, sub_options, std::move(callback));
  if (!subscribed.ok()) {
    EnqueueError(shared_, conn, request_id, subscribed.status());
    return;
  }
  std::shared_ptr<Subscription> sub = std::move(subscribed).value();
  {
    std::lock_guard<std::mutex> lock(conn->subs_mu);
    conn->subs.emplace(sub->id(),
                       std::make_pair(request.venue_id, sub));
  }
  {
    // The connection may have closed between Subscribe and registration;
    // sweep immediately instead of leaking the standing query.
    std::lock_guard<std::mutex> lock(conn->out_mu);
    if (conn->closed) {
      (void)routed.value()->Unsubscribe(sub->id());
      std::lock_guard<std::mutex> subs_lock(conn->subs_mu);
      conn->subs.erase(sub->id());
      return;
    }
  }
  WireSubscribeResponse response;
  response.subscription_id = sub->id();
  EnqueueFrame(shared_, conn,
               EncodeSubscribeResultFrame(request_id, response));
}

void IflsServer::RunTick(std::shared_ptr<Connection> conn,
                         std::uint64_t request_id, WireTickRequest request) {
  Result<std::shared_ptr<IflsService>> routed = Route(request.venue_id);
  if (!routed.ok()) {
    EnqueueError(shared_, conn, request_id, routed.status());
    return;
  }
  Status status = routed.value()->TickSubscription(
      request.subscription_id, request.client, request.position,
      request.partition);
  if (!status.ok()) {
    EnqueueError(shared_, conn, request_id, status);
    return;
  }
  EnqueueFrame(shared_, conn,
               EncodeEmptyFrame(WireOpcode::kAck, request_id));
}

void IflsServer::RunUnsubscribe(std::shared_ptr<Connection> conn,
                                std::uint64_t request_id,
                                WireUnsubscribeRequest request) {
  Result<std::shared_ptr<IflsService>> routed = Route(request.venue_id);
  if (!routed.ok()) {
    EnqueueError(shared_, conn, request_id, routed.status());
    return;
  }
  Status status = routed.value()->Unsubscribe(request.subscription_id);
  {
    std::lock_guard<std::mutex> lock(conn->subs_mu);
    conn->subs.erase(request.subscription_id);
  }
  if (!status.ok()) {
    EnqueueError(shared_, conn, request_id, status);
    return;
  }
  EnqueueFrame(shared_, conn,
               EncodeEmptyFrame(WireOpcode::kAck, request_id));
}

}  // namespace ifls
