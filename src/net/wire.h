#ifndef IFLS_NET_WIRE_H_
#define IFLS_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/common/trace.h"
#include "src/core/solve_dispatch.h"
#include "src/indoor/types.h"
#include "src/service/delta_overlay.h"

namespace ifls {

// The IFLS wire protocol (DESIGN.md §13): a compact little-endian binary
// framing shared by IflsServer and IflsClient. Every message is one frame —
// a fixed 32-byte header followed by an opcode-specific payload:
//
//   offset  size  field
//        0     4  magic            "IFLW" (0x574C4649 LE)
//        4     2  version          kWireVersion (1)
//        6     2  opcode           WireOpcode
//        8     8  request_id       client-chosen; responses echo it, and
//                                  subscription pushes carry the id of the
//                                  Subscribe request that created them
//       16     4  payload_bytes    length of the payload that follows
//       20     4  flags            extension bits (0 before PR 10)
//       24     8  payload_checksum FNV-1a-64 of the payload bytes
//
// Payload integers/doubles are little-endian (src/common/endian.h); strings
// encode as u32 length + raw bytes; the checksum reuses the v3 snapshot's
// FNV-1a-64 (src/common/hash.h). Responses are matched by request id, not
// order: a pipelined connection may receive replies out of submission order
// (socket-layer batching and worker scheduling reorder freely), and
// subscription pushes interleave with responses on the same stream.
//
// Frame extensions (DESIGN.md §15): the former reserved word at offset 20 is
// a flags field. kWireFlagTraceContext marks a fixed-size trace-context
// block (trace id, parent span id, sampling verdict, client send timestamp)
// appended as a *suffix of the payload region* — payload_bytes and the
// checksum cover it, so pre-extension decoders that treated the word as
// reserved-zero never see a flagged frame, and flag-free frames are
// byte-identical to what PR 8 produced. TryDecodeFrame strips the suffix
// into WireFrame::trace_context before any message decoder (all of which
// reject trailing bytes) sees the payload. Unknown flag bits are a corrupt
// envelope: the decoder cannot know how many trailing bytes they claim.
//
// Error handling contract: a syntactically valid frame with a bad payload is
// answered with a kError frame echoing its request id and the stream stays
// usable; a corrupt frame *envelope* (bad magic / version / oversized length
// / checksum mismatch) means the byte stream itself is unsynchronized — the
// decoder returns a non-ok Status and the server closes the connection after
// a best-effort kError with request id 0.

inline constexpr std::uint32_t kWireMagic = 0x574C4649u;  // "IFLW"
inline constexpr std::uint16_t kWireVersion = 1;
/// Frames larger than this are rejected as corrupt before any allocation —
/// the bound keeps a malicious or desynchronized length field from forcing
/// a giant buffer. Generous enough for ~400k-client query payloads.
inline constexpr std::uint32_t kWireMaxPayloadBytes = 16u << 20;
inline constexpr std::size_t kWireHeaderBytes = 32;

/// Header flag bits (offset 20). Bits without a constant here are unknown
/// extensions and make the envelope undecodable.
inline constexpr std::uint32_t kWireFlagTraceContext = 0x1u;
/// Serialized TraceContext suffix: trace_id u64 + parent_span_id u64 +
/// sampled u8 + client_send_nanos u64.
inline constexpr std::size_t kWireTraceContextBytes = 25;

/// Frame opcodes. Requests are < 128, responses >= 128; kSubscriptionPush is
/// the one server-initiated opcode, kError the one failure envelope.
enum class WireOpcode : std::uint16_t {
  // Requests.
  kQueryMinMax = 1,
  kQueryMinDist = 2,
  kQueryMaxSum = 3,
  kMutate = 4,
  kSubscribe = 5,
  kSubscriptionTick = 6,
  kUnsubscribe = 7,
  kMetricsPull = 8,
  kTracePull = 9,
  kPing = 10,
  // Responses.
  kQueryResult = 128,
  kMutateResult = 129,
  kSubscribeResult = 130,
  kAck = 131,          // SubscriptionTick / Unsubscribe success
  kMetricsText = 132,
  kTraceJson = 133,
  kPong = 134,
  kSubscriptionPush = 160,
  kError = 192,
};

/// Stable name for logs/tests ("QueryMinMax", "Error", ...).
const char* WireOpcodeName(WireOpcode opcode);

/// True for the three query opcodes (the ones the server may coalesce into
/// socket-layer batches).
inline bool IsQueryOpcode(WireOpcode op) {
  return op == WireOpcode::kQueryMinMax || op == WireOpcode::kQueryMinDist ||
         op == WireOpcode::kQueryMaxSum;
}

/// Query opcode <-> objective mapping.
WireOpcode QueryOpcodeFor(IflsObjective objective);
IflsObjective ObjectiveForQueryOpcode(WireOpcode opcode);

/// One decoded frame: the envelope fields plus the raw payload bytes. When
/// the sender attached a trace context (kWireFlagTraceContext), the decoder
/// has already stripped it from `payload` into `trace_context`.
struct WireFrame {
  WireOpcode opcode = WireOpcode::kPing;
  std::uint64_t request_id = 0;
  std::string payload;
  bool has_trace_context = false;
  TraceContext trace_context;
};

// ---------------------------------------------------------------------------
// Message payloads
// ---------------------------------------------------------------------------

/// Query request (kQueryMinMax/kQueryMinDist/kQueryMaxSum; the objective is
/// the opcode). `venue_id` routes through VenueRouter on fleet servers and
/// must be empty on single-venue servers.
struct WireQueryRequest {
  std::string venue_id;
  double deadline_seconds = 0.0;
  std::vector<Client> clients;
};

/// kQueryResult. `answer`/`objective` are the solver's exact bits, so a
/// client can differentially check a networked reply against an in-process
/// solve with bit equality. `batched`/`batch_size` report whether the server
/// served this query from a coalesced socket-layer batch (observability;
/// answers are identical either way).
struct WireQueryResponse {
  bool found = false;
  PartitionId answer = kInvalidPartition;
  double objective = 0.0;
  std::uint64_t snapshot_epoch = 0;
  std::uint64_t overlay_size = 0;
  bool batched = false;
  std::uint32_t batch_size = 0;
};

/// kMutate request.
struct WireMutateRequest {
  std::string venue_id;
  MutationKind kind = MutationKind::kAddFacility;
  PartitionId partition = kInvalidPartition;
};

/// kMutateResult: the service mutation version the change was applied at.
struct WireMutateResponse {
  std::uint64_t applied_version = 0;
};

/// kSubscribe request: register a standing MinMax query. The initial answer
/// (sequence 0) arrives as a kSubscriptionPush frame carrying this request's
/// id; because it is delivered synchronously during registration it may
/// precede the kSubscribeResult on the stream — match pushes by request id,
/// not arrival order.
struct WireSubscribeRequest {
  std::string venue_id;
  double tolerance = 0.0;
  std::vector<Client> clients;
};

struct WireSubscribeResponse {
  std::uint64_t subscription_id = 0;
};

/// kSubscriptionTick request: move one client of a standing query.
struct WireTickRequest {
  std::string venue_id;
  std::uint64_t subscription_id = 0;
  ClientId client = kInvalidClient;
  Point position;
  PartitionId partition = kInvalidPartition;
};

/// kUnsubscribe request.
struct WireUnsubscribeRequest {
  std::string venue_id;
  std::uint64_t subscription_id = 0;
};

/// kSubscriptionPush (server -> client): one pushed re-solve of a standing
/// query, streamed over the connection that subscribed.
struct WireSubscriptionPush {
  std::uint64_t subscription_id = 0;
  std::uint64_t sequence = 0;
  std::uint64_t version = 0;
  std::uint64_t ticks_applied = 0;
  double latency_seconds = 0.0;
  bool found = false;
  PartitionId answer = kInvalidPartition;
  double objective = 0.0;
};

/// kError: a typed Status travelling the wire. kUnavailable is the
/// backpressure signal (admission queue full / deadline exceeded at the
/// server) — the connection stays open and the caller may retry.
struct WireError {
  StatusCode code = StatusCode::kInternal;
  std::string message;
};

/// kMetricsText / kTraceJson responses: one string blob (the Prometheus
/// exposition / the Chrome trace-event JSON).
struct WireTextResponse {
  std::string text;
};

/// kPong response. PR 8 pongs were empty; PR 10 stamps the server's trace
/// clock at frame receipt and at reply encode, giving the client the t1/t2
/// legs of an NTP-style clock-offset estimate (DESIGN.md §15). An empty
/// pong payload still decodes (both fields zero) for mixed-version runs.
struct WirePongResponse {
  std::uint64_t server_recv_nanos = 0;
  std::uint64_t server_send_nanos = 0;
};

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Appends one complete frame (header + payload) to `out`. A valid
/// `trace_context` (non-null, trace_id != 0) rides along as the flagged
/// payload suffix; null or invalid contexts produce a PR 8-identical frame.
void AppendFrame(std::string* out, WireOpcode opcode, std::uint64_t request_id,
                 std::string_view payload,
                 const TraceContext* trace_context = nullptr);

/// Convenience frame builders: encode the message and wrap it in a frame.
std::string EncodeQueryFrame(std::uint64_t request_id, IflsObjective objective,
                             const WireQueryRequest& request,
                             const TraceContext* trace_context = nullptr);
std::string EncodeQueryResultFrame(std::uint64_t request_id,
                                   const WireQueryResponse& response);
std::string EncodeMutateFrame(std::uint64_t request_id,
                              const WireMutateRequest& request);
std::string EncodeMutateResultFrame(std::uint64_t request_id,
                                    const WireMutateResponse& response);
std::string EncodeSubscribeFrame(std::uint64_t request_id,
                                 const WireSubscribeRequest& request);
std::string EncodeSubscribeResultFrame(std::uint64_t request_id,
                                       const WireSubscribeResponse& response);
std::string EncodeTickFrame(std::uint64_t request_id,
                            const WireTickRequest& request);
std::string EncodeUnsubscribeFrame(std::uint64_t request_id,
                                   const WireUnsubscribeRequest& request);
std::string EncodePushFrame(std::uint64_t request_id,
                            const WireSubscriptionPush& push);
std::string EncodeErrorFrame(std::uint64_t request_id, const Status& status);
std::string EncodeTextFrame(WireOpcode opcode, std::uint64_t request_id,
                            std::string_view text);
std::string EncodeEmptyFrame(WireOpcode opcode, std::uint64_t request_id);
std::string EncodePongFrame(std::uint64_t request_id,
                            const WirePongResponse& response);

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Per-connection receive buffer backing frame reassembly: a flat byte ring
/// with amortized O(1) append/consume and a contiguous read view (the tail
/// compacts to the front once the head outgrows half the storage, so decode
/// always sees one linear span regardless of how the socket fragmented the
/// stream).
class ByteRing {
 public:
  void Append(const void* data, std::size_t n);
  const char* data() const { return buffer_.data() + head_; }
  std::size_t size() const { return buffer_.size() - head_; }
  bool empty() const { return size() == 0; }
  /// Drops `n` bytes from the front. n must be <= size().
  void Consume(std::size_t n);
  void Clear();

 private:
  std::vector<char> buffer_;
  std::size_t head_ = 0;
};

/// Attempts to decode one frame from the front of `ring`.
///   - complete valid frame: consumes it and returns the frame
///   - incomplete prefix: returns nullopt, ring untouched (feed more bytes)
///   - corrupt envelope (bad magic/version, oversized length, checksum
///     mismatch): returns InvalidArgument; the stream is unsynchronized and
///     the connection must be torn down.
Result<std::optional<WireFrame>> TryDecodeFrame(ByteRing* ring);

/// Payload decoders. Every truncation/overrun returns a typed
/// InvalidArgument naming the field that could not be read.
Result<WireQueryRequest> DecodeQueryRequest(std::string_view payload);
Result<WireQueryResponse> DecodeQueryResponse(std::string_view payload);
Result<WireMutateRequest> DecodeMutateRequest(std::string_view payload);
Result<WireMutateResponse> DecodeMutateResponse(std::string_view payload);
Result<WireSubscribeRequest> DecodeSubscribeRequest(std::string_view payload);
Result<WireSubscribeResponse> DecodeSubscribeResponse(
    std::string_view payload);
Result<WireTickRequest> DecodeTickRequest(std::string_view payload);
Result<WireUnsubscribeRequest> DecodeUnsubscribeRequest(
    std::string_view payload);
Result<WireSubscriptionPush> DecodePush(std::string_view payload);
Result<WireTextResponse> DecodeTextResponse(std::string_view payload);
/// Empty payloads (PR 8 pongs) decode as {0, 0}.
Result<WirePongResponse> DecodePong(std::string_view payload);
/// Decodes a kError payload into the Status it carries (non-ok by
/// construction; a malformed error payload decodes as kInternal).
Status DecodeErrorPayload(std::string_view payload);

}  // namespace ifls

#endif  // IFLS_NET_WIRE_H_
