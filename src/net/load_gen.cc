#include "src/net/load_gen.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "src/net/socket.h"
#include "src/net/wire.h"

namespace ifls {
namespace {

using Clock = std::chrono::steady_clock;

/// Exact-bits double comparison: the differential contract is bit identity,
/// not epsilon closeness.
bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

struct Inflight {
  std::size_t expectation = 0;
  Clock::time_point sent_at;
};

struct ConnState {
  OwnedFd fd;
  ByteRing ring;
  std::map<std::uint64_t, Inflight> inflight;
  std::uint64_t next_request_id = 1;
  std::size_t issued = 0;    // queries sent so far
  std::size_t next_exp = 0;  // rotating expectation cursor
  bool failed = false;
};

struct ThreadStats {
  std::vector<double> latencies;
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  std::uint64_t mismatches = 0;
  Status status;
};

Status WriteAll(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + sent, bytes.size() - sent);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::Unavailable(std::string("load_gen send: ") +
                               std::strerror(errno));
  }
  return Status::OK();
}

Status SendNext(ConnState* conn, const LoadGenOptions& options,
                const std::vector<NetExpectation>& expectations) {
  const std::size_t idx = conn->next_exp;
  conn->next_exp = (conn->next_exp + 1) % expectations.size();
  const NetExpectation& exp = expectations[idx];
  WireQueryRequest request;
  request.venue_id = options.venue_id;
  request.clients = exp.clients;
  const std::uint64_t id = conn->next_request_id++;
  Inflight entry;
  entry.expectation = idx;
  entry.sent_at = Clock::now();
  IFLS_RETURN_NOT_OK(
      WriteAll(conn->fd.get(), EncodeQueryFrame(id, exp.objective, request)));
  conn->inflight.emplace(id, entry);
  ++conn->issued;
  return Status::OK();
}

/// Decodes every complete frame buffered on `conn`, verifies each response
/// against its expectation, and refills the pipeline. Transport breakage
/// surfaces as non-ok.
Status DrainConn(ConnState* conn, const LoadGenOptions& options,
                 const std::vector<NetExpectation>& expectations,
                 ThreadStats* stats) {
  while (true) {
    IFLS_ASSIGN_OR_RETURN(std::optional<WireFrame> frame,
                          TryDecodeFrame(&conn->ring));
    if (!frame.has_value()) return Status::OK();
    if (frame->opcode == WireOpcode::kSubscriptionPush) continue;  // ignore
    auto it = conn->inflight.find(frame->request_id);
    if (it == conn->inflight.end()) {
      return Status::Internal("response for unknown request id " +
                              std::to_string(frame->request_id));
    }
    const double latency =
        std::chrono::duration<double>(Clock::now() - it->second.sent_at)
            .count();
    const NetExpectation& exp = expectations[it->second.expectation];
    conn->inflight.erase(it);
    if (frame->opcode == WireOpcode::kError) {
      // Typed server-side error (backpressure etc.): counted, not fatal.
      ++stats->errors;
    } else if (frame->opcode != WireOpcode::kQueryResult) {
      return Status::Internal(std::string("unexpected opcode ") +
                              WireOpcodeName(frame->opcode));
    } else {
      IFLS_ASSIGN_OR_RETURN(WireQueryResponse response,
                            DecodeQueryResponse(frame->payload));
      if (response.found != exp.found || response.answer != exp.answer ||
          !BitEqual(response.objective, exp.objective_value)) {
        ++stats->mismatches;
      } else {
        ++stats->completed;
        stats->latencies.push_back(latency);
      }
    }
    if (conn->issued < options.queries_per_connection) {
      IFLS_RETURN_NOT_OK(SendNext(conn, options, expectations));
    }
  }
}

void DriveConnections(std::vector<ConnState>* conns,
                      const LoadGenOptions& options,
                      const std::vector<NetExpectation>& expectations,
                      ThreadStats* stats) {
  // Prime every pipeline.
  for (ConnState& conn : *conns) {
    const std::size_t depth = std::min<std::size_t>(
        static_cast<std::size_t>(std::max(options.pipeline_depth, 1)),
        options.queries_per_connection);
    for (std::size_t i = 0; i < depth; ++i) {
      Status status = SendNext(&conn, options, expectations);
      if (!status.ok()) {
        conn.failed = true;
        stats->status = status;
        break;
      }
    }
  }
  std::vector<pollfd> fds;
  std::vector<ConnState*> order;
  char buf[64 * 1024];
  while (true) {
    fds.clear();
    order.clear();
    for (ConnState& conn : *conns) {
      if (conn.failed || !conn.fd.valid()) continue;
      if (conn.inflight.empty() &&
          conn.issued >= options.queries_per_connection) {
        conn.fd.Reset();  // done: close eagerly so the server reaps it
        continue;
      }
      fds.push_back(pollfd{conn.fd.get(), POLLIN, 0});
      order.push_back(&conn);
    }
    if (fds.empty()) return;
    int ready = ::poll(fds.data(), fds.size(), 10'000);
    if (ready < 0) {
      if (errno == EINTR) continue;
      stats->status = Status::Internal(std::string("poll: ") +
                                       std::strerror(errno));
      return;
    }
    if (ready == 0) {
      stats->status = Status::DeadlineExceeded(
          "load_gen: no response within 10s across " +
          std::to_string(fds.size()) + " connections");
      return;
    }
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
      ConnState* conn = order[i];
      ssize_t n = ::read(conn->fd.get(), buf, sizeof(buf));
      if (n <= 0) {
        if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
        conn->failed = true;
        stats->status =
            Status::Unavailable("load_gen: connection closed mid-run");
        continue;
      }
      conn->ring.Append(buf, static_cast<std::size_t>(n));
      Status status = DrainConn(conn, options, expectations, stats);
      if (!status.ok()) {
        conn->failed = true;
        stats->status = status;
      }
    }
  }
}

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  std::size_t idx = static_cast<std::size_t>(q * sorted.size());
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

}  // namespace

Result<LoadGenReport> RunNetworkLoad(
    const LoadGenOptions& options,
    const std::vector<NetExpectation>& expectations) {
  if (expectations.empty()) {
    return Status::InvalidArgument("RunNetworkLoad: no expectations");
  }
  if (options.num_connections == 0 || options.queries_per_connection == 0) {
    return Status::InvalidArgument(
        "RunNetworkLoad: need connections and queries");
  }
  // Both ends of every connection live in this process during loopback
  // benches; leave generous headroom over 2x.
  IFLS_RETURN_NOT_OK(EnsureFdLimit(options.num_connections * 2 + 256));

  const int num_threads = std::max(options.num_threads, 1);
  std::vector<std::vector<ConnState>> per_thread(
      static_cast<std::size_t>(num_threads));
  for (std::size_t i = 0; i < options.num_connections; ++i) {
    IFLS_ASSIGN_OR_RETURN(OwnedFd fd, ConnectTcp(options.port));
    ConnState conn;
    conn.fd = std::move(fd);
    // Stagger each connection's starting expectation so one coalesced batch
    // mixes objectives and client sets.
    conn.next_exp = i % expectations.size();
    per_thread[i % static_cast<std::size_t>(num_threads)].push_back(
        std::move(conn));
  }

  std::vector<ThreadStats> stats(static_cast<std::size_t>(num_threads));
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      DriveConnections(&per_thread[static_cast<std::size_t>(t)], options,
                       expectations, &stats[static_cast<std::size_t>(t)]);
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();

  LoadGenReport report;
  report.connections = options.num_connections;
  report.wall_seconds = wall;
  std::vector<double> latencies;
  for (ThreadStats& s : stats) {
    if (!s.status.ok()) return s.status;
    report.completed += s.completed;
    report.errors += s.errors;
    report.mismatches += s.mismatches;
    latencies.insert(latencies.end(), s.latencies.begin(), s.latencies.end());
  }
  std::sort(latencies.begin(), latencies.end());
  report.qps = wall > 0.0 ? static_cast<double>(report.completed) / wall : 0.0;
  report.p50_seconds = Percentile(latencies, 0.50);
  report.p99_seconds = Percentile(latencies, 0.99);
  report.p999_seconds = Percentile(latencies, 0.999);
  return report;
}

}  // namespace ifls
