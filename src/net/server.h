#ifndef IFLS_NET_SERVER_H_
#define IFLS_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/net/socket.h"
#include "src/net/wire.h"
#include "src/service/service.h"
#include "src/service/venue_router.h"

namespace ifls {

/// Network front configuration.
struct ServerOptions {
  /// Loopback TCP port; 0 picks a free port (read it back via port()).
  std::uint16_t port = 0;
  /// Socket-layer batching: query frames decoded within one epoll cycle are
  /// coalesced per venue and run as one BatchQueryEngine batch on a
  /// dispatcher thread. Off routes every query through the service's
  /// admission queue individually (SubmitQueryAsync). Answers are
  /// bit-identical either way; batching trades per-query queue hops for
  /// batch locality.
  bool coalesce_batches = true;
  /// Threads draining the dispatch queue (routed work: batches, single
  /// queries, mutations, subscription calls). Venue hydration and solver
  /// runs happen here, never on the event loop.
  int num_dispatchers = 2;
  /// Bound on queued dispatch jobs — the socket-layer mirror of
  /// ServiceOptions::queue_capacity. Overflow is backpressure: the affected
  /// frames are answered with kError(kUnavailable) and counted in
  /// ifls_net_rejected_total; the connection stays open.
  std::size_t dispatch_queue_capacity = 256;
  /// Thread count inside each coalesced batch run (BatchEngineOptions::
  /// num_threads); 1 solves the batch inline on the dispatcher thread.
  int batch_threads = 1;
};

/// Aggregate server counters (process-wide mirrors live in the metrics
/// registry as ifls_net_*).
struct ServerMetrics {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_active = 0;   // gauge
  std::uint64_t frames_received = 0;
  std::uint64_t queries = 0;
  std::uint64_t batches = 0;          // coalesced batch runs
  std::uint64_t batched_queries = 0;  // queries served from those batches
  std::uint64_t rejected = 0;         // kUnavailable backpressure replies
  std::uint64_t errors = 0;           // kError frames sent (incl. rejected)
  std::uint64_t pushes_sent = 0;      // subscription pushes streamed out
  std::uint64_t http_requests = 0;    // admin-plane requests served
};

/// The epoll event-loop network server (DESIGN.md §13): multiplexes
/// thousands of non-blocking loopback connections speaking the IFLS wire
/// protocol onto one IflsService (single-venue mode) or a VenueRouter
/// (fleet mode). A connection whose first four bytes are `GET ` (binary
/// frames start with the magic "IFLW", so the sniff is unambiguous) is
/// served as a minimal HTTP/1.0 admin plane on the same port instead:
/// /metrics (Prometheus exposition), /healthz, /venues, /slow
/// (DESIGN.md §15) — stock curl and a Prometheus scrape config work with
/// zero extra ports.
///
/// Threading model: one event-loop thread owns the listener, the epoll set
/// and every connection's receive side — reads, frame reassembly
/// (ByteRing), envelope validation and response flushing all happen there,
/// so connection state needs no locking beyond each connection's outbound
/// buffer (written by dispatcher threads and subscription callbacks, flushed
/// by the loop after an eventfd wake). Anything that may block — venue
/// hydration, admission, solver runs, mutations, subscribe/tick calls —
/// runs on the dispatcher pool.
///
/// Answer fidelity: both execution paths end in the same
/// SolveWithObjective(objective, ctx, service->options().solvers) the
/// in-process service uses, against a pinned ServingState, so a networked
/// reply is bit-identical to calling IflsService::Query in process
/// (tests/net_server_test locks this in).
class IflsServer {
 public:
  /// Single-venue server. `service` must outlive the server; requests with
  /// a non-empty venue_id are rejected as InvalidArgument.
  static Result<std::unique_ptr<IflsServer>> Create(
      std::shared_ptr<IflsService> service, const ServerOptions& options = {});

  /// Fleet server: venue_id routes through `router` (hydrating lazily).
  static Result<std::unique_ptr<IflsServer>> CreateFleet(
      std::shared_ptr<VenueRouter> router, const ServerOptions& options = {});

  ~IflsServer();

  IflsServer(const IflsServer&) = delete;
  IflsServer& operator=(const IflsServer&) = delete;

  /// The bound port (options.port, or the kernel-picked port when 0).
  std::uint16_t port() const { return port_; }

  /// Closes the listener and every connection, then joins the loop and
  /// dispatcher threads. Queued dispatch jobs still run (their replies are
  /// dropped on the closed connections). Idempotent; the destructor calls
  /// it. Stop the server before stopping the underlying service.
  void Stop();

  ServerMetrics Metrics() const;
  const ServerOptions& options() const { return options_; }

 private:
  struct Connection;
  /// State shared with service-owned completion/subscription callbacks,
  /// which may fire after the server object is gone (the service outlives
  /// it): the outbound flush handshake (queue + eventfd) and the counters
  /// those callbacks bump. Owned via shared_ptr; defined in server.cc.
  struct NetShared;
  /// One decoded query frame awaiting execution (the unit of coalescing).
  struct PendingNetQuery {
    std::shared_ptr<Connection> conn;
    std::uint64_t request_id = 0;
    IflsObjective objective = IflsObjective::kMinMax;
    WireQueryRequest request;
    /// Trace context propagated on the query frame (DESIGN.md §15);
    /// has_trace false = context-free frame, server mints locally.
    bool has_trace = false;
    TraceContext trace;
  };

  IflsServer(std::shared_ptr<IflsService> service,
             std::shared_ptr<VenueRouter> router, ServerOptions options);
  Status Start();

  void LoopThread();
  void AcceptReady();
  void HandleReadable(const std::shared_ptr<Connection>& conn);
  /// Decodes and routes every complete frame in the connection's ring.
  /// Query frames land in cycle_queries_ for end-of-cycle coalescing.
  void DrainFrames(const std::shared_ptr<Connection>& conn);
  void HandleFrame(const std::shared_ptr<Connection>& conn, WireFrame frame);
  /// Serves the HTTP admin plane (DESIGN.md §15) on a connection whose
  /// first bytes sniffed as `GET `: one request, one response, close. Loop
  /// thread only.
  void HandleHttp(const std::shared_ptr<Connection>& conn);
  /// The /venues JSON document: per-venue residency/eviction stats (fleet
  /// mode) or one synthetic always-resident entry (single-venue mode).
  std::string VenuesJson() const;
  /// End-of-epoll-cycle: groups cycle_queries_ per venue and dispatches
  /// batch jobs (or per-query admission jobs with coalescing off).
  void FlushCycleQueries();
  void CloseConnection(const std::shared_ptr<Connection>& conn);

  /// Appends an encoded frame to the connection's outbound buffer and pokes
  /// the loop's eventfd. Static and shared_ptr-fed so service-owned
  /// callbacks can keep using it after the server object is gone; drops
  /// silently once the connection closed.
  static void EnqueueFrame(const std::shared_ptr<NetShared>& shared,
                           const std::shared_ptr<Connection>& conn,
                           std::string frame);
  /// EnqueueFrame of a kError frame; bumps the error/rejected counters
  /// (kUnavailable counts as backpressure).
  static void EnqueueError(const std::shared_ptr<NetShared>& shared,
                           const std::shared_ptr<Connection>& conn,
                           std::uint64_t request_id, const Status& status);
  /// Writes as much outbound data as the socket accepts; arms EPOLLOUT on
  /// partial writes. Loop thread only.
  void FlushOut(const std::shared_ptr<Connection>& conn);

  /// Drains the shared flush queue (loop thread, after each epoll cycle).
  void FlushPendingWrites();

  /// Enqueues a dispatcher job; false + dropped job when the dispatch queue
  /// is at capacity or the server is stopping (backpressure). `force`
  /// bypasses both for internal cleanup work (connection-close
  /// unsubscribes).
  bool Dispatch(std::function<void()> job, bool force = false);
  void DispatcherThread();

  /// Resolves the service a request routes to (single-venue or fleet). May
  /// hydrate — dispatcher threads only.
  Result<std::shared_ptr<IflsService>> Route(const std::string& venue_id);

  // Dispatcher-side request executors.
  void RunBatch(std::string venue_id, std::vector<PendingNetQuery> batch);
  void RunSingleQuery(PendingNetQuery query);
  void RunMutate(std::shared_ptr<Connection> conn, std::uint64_t request_id,
                 WireMutateRequest request);
  void RunSubscribe(std::shared_ptr<Connection> conn, std::uint64_t request_id,
                    WireSubscribeRequest request);
  void RunTick(std::shared_ptr<Connection> conn, std::uint64_t request_id,
               WireTickRequest request);
  void RunUnsubscribe(std::shared_ptr<Connection> conn,
                      std::uint64_t request_id, WireUnsubscribeRequest request);

  void RegisterMetrics();

  const std::shared_ptr<IflsService> service_;  // single-venue mode
  const std::shared_ptr<VenueRouter> router_;   // fleet mode
  const ServerOptions options_;
  std::uint16_t port_ = 0;

  /// Flush handshake + counters; see NetShared.
  const std::shared_ptr<NetShared> shared_;

  OwnedFd listener_;
  OwnedFd epoll_;

  std::thread loop_;
  std::vector<std::thread> dispatchers_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  bool stopped_ = false;

  /// Loop-thread-owned connection table (fd -> connection).
  std::map<int, std::shared_ptr<Connection>> conns_;
  /// Query frames decoded during the current epoll cycle, coalesced by
  /// FlushCycleQueries. Loop thread only.
  std::vector<PendingNetQuery> cycle_queries_;

  // Dispatch queue.
  std::mutex dispatch_mu_;
  std::condition_variable dispatch_cv_;
  std::deque<std::function<void()>> dispatch_jobs_;
  bool dispatch_stop_ = false;

  std::vector<MetricsRegistry::Registration> metric_registrations_;
};

}  // namespace ifls

#endif  // IFLS_NET_SERVER_H_
