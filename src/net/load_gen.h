#ifndef IFLS_NET_LOAD_GEN_H_
#define IFLS_NET_LOAD_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/solve_dispatch.h"
#include "src/indoor/types.h"

namespace ifls {

/// One query the load generator replays, with the in-process ground truth
/// every networked answer is differentially checked against (bit equality on
/// found/answer/objective — the server must be indistinguishable from
/// calling the service directly).
struct NetExpectation {
  IflsObjective objective = IflsObjective::kMinMax;
  std::vector<Client> clients;
  bool found = false;
  PartitionId answer = kInvalidPartition;
  double objective_value = 0.0;
};

struct LoadGenOptions {
  std::uint16_t port = 0;
  /// Concurrent connections, split across `num_threads` driver threads.
  std::size_t num_connections = 1024;
  int num_threads = 8;
  /// Requests in flight per connection (pipelining).
  int pipeline_depth = 1;
  /// Total queries per connection over the run.
  std::size_t queries_per_connection = 16;
  /// venue_id stamped on every request ("" = single-venue server).
  std::string venue_id;
};

struct LoadGenReport {
  std::size_t connections = 0;
  std::uint64_t completed = 0;   // responses verified ok
  std::uint64_t errors = 0;      // typed kError replies (incl. backpressure)
  std::uint64_t mismatches = 0;  // answers differing from ground truth
  double wall_seconds = 0.0;
  double qps = 0.0;
  double p50_seconds = 0.0;
  double p99_seconds = 0.0;
  double p999_seconds = 0.0;
};

/// Drives `options.num_connections` concurrent wire connections against a
/// running server: every connection cycles through `expectations`
/// (connection i starts at offset i, so concurrent batches mix objectives),
/// keeps `pipeline_depth` requests in flight, and checks each response
/// bit-identically against the expectation it was issued from. Fails (non-ok)
/// only on transport-level breakage; mismatches/errors are reported, not
/// thrown, so benches can assert on them explicitly.
Result<LoadGenReport> RunNetworkLoad(
    const LoadGenOptions& options,
    const std::vector<NetExpectation>& expectations);

}  // namespace ifls

#endif  // IFLS_NET_LOAD_GEN_H_
