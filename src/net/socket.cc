#include "src/net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

namespace ifls {
namespace {

std::string ErrnoText(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

void OwnedFd::Reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Status::Internal(ErrnoText("fcntl(F_GETFL)"));
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(ErrnoText("fcntl(F_SETFL, O_NONBLOCK)"));
  }
  return Status::OK();
}

Status SetNoDelay(int fd) {
  int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) < 0) {
    return Status::Internal(ErrnoText("setsockopt(TCP_NODELAY)"));
  }
  return Status::OK();
}

Result<OwnedFd> CreateTcpListener(std::uint16_t port,
                                  std::uint16_t* bound_port) {
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Status::Internal(ErrnoText("socket"));
  int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
      0) {
    return Status::Internal(ErrnoText("setsockopt(SO_REUSEADDR)"));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return Status::Internal(ErrnoText("bind"));
  }
  // Backlog sized for bench ramps that open ~1k connections in a burst.
  if (::listen(fd.get(), 4096) < 0) {
    return Status::Internal(ErrnoText("listen"));
  }
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&actual), &len) <
        0) {
      return Status::Internal(ErrnoText("getsockname"));
    }
    *bound_port = ntohs(actual.sin_port);
  }
  IFLS_RETURN_NOT_OK(SetNonBlocking(fd.get()));
  return fd;
}

Result<OwnedFd> ConnectTcp(std::uint16_t port) {
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Status::Internal(ErrnoText("socket"));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    return Status::Unavailable(ErrnoText("connect"));
  }
  IFLS_RETURN_NOT_OK(SetNoDelay(fd.get()));
  return fd;
}

Status EnsureFdLimit(std::uint64_t want) {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) {
    return Status::Internal(ErrnoText("getrlimit(RLIMIT_NOFILE)"));
  }
  if (lim.rlim_cur != RLIM_INFINITY && lim.rlim_cur >= want) {
    return Status::OK();
  }
  rlimit raised = lim;
  raised.rlim_cur = (lim.rlim_max == RLIM_INFINITY)
                        ? want
                        : (want < lim.rlim_max ? want : lim.rlim_max);
  if (raised.rlim_cur <= lim.rlim_cur) return Status::OK();
  if (::setrlimit(RLIMIT_NOFILE, &raised) != 0) {
    return Status::Internal(ErrnoText("setrlimit(RLIMIT_NOFILE)"));
  }
  if (raised.rlim_cur < want) {
    return Status::Unavailable("fd limit capped at " +
                               std::to_string(raised.rlim_cur) + " (wanted " +
                               std::to_string(want) + ")");
  }
  return Status::OK();
}

}  // namespace ifls
