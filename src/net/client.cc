#include "src/net/client.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace ifls {

Result<std::unique_ptr<IflsClient>> IflsClient::Connect(std::uint16_t port) {
  IFLS_ASSIGN_OR_RETURN(OwnedFd fd, ConnectTcp(port));
  return std::unique_ptr<IflsClient>(new IflsClient(std::move(fd)));
}

Status IflsClient::Poison(Status status) {
  if (poisoned_.ok()) poisoned_ = status;
  fd_.Reset();
  return status;
}

Status IflsClient::SendBytes(const std::string& bytes) {
  if (!poisoned_.ok()) return poisoned_;
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::write(fd_.get(), bytes.data() + sent, bytes.size() - sent);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Poison(Status::Unavailable(std::string("send failed: ") +
                                      std::strerror(errno)));
  }
  return Status::OK();
}

Status IflsClient::ReadMore() {
  char buf[64 * 1024];
  while (true) {
    ssize_t n = ::read(fd_.get(), buf, sizeof(buf));
    if (n > 0) {
      ring_.Append(buf, static_cast<std::size_t>(n));
      return Status::OK();
    }
    if (n == 0) {
      return Poison(Status::Unavailable("connection closed by server"));
    }
    if (errno == EINTR) continue;
    return Poison(Status::Unavailable(std::string("recv failed: ") +
                                      std::strerror(errno)));
  }
}

Result<WireFrame> IflsClient::WaitFrame(std::uint64_t request_id) {
  if (!poisoned_.ok()) return poisoned_;
  while (true) {
    auto it = pending_.find(request_id);
    if (it != pending_.end()) {
      WireFrame frame = std::move(it->second);
      pending_.erase(it);
      return frame;
    }
    Result<std::optional<WireFrame>> decoded = TryDecodeFrame(&ring_);
    if (!decoded.ok()) return Poison(decoded.status());
    if (!decoded.value().has_value()) {
      IFLS_RETURN_NOT_OK(ReadMore());
      continue;
    }
    WireFrame frame = std::move(*decoded.value());
    if (frame.opcode == WireOpcode::kSubscriptionPush) {
      Result<WireSubscriptionPush> push = DecodePush(frame.payload);
      // A push we cannot decode means the stream is not trustworthy.
      if (!push.ok()) return Poison(push.status());
      pushes_.push_back(
          ReceivedPush{frame.request_id, std::move(push).value()});
      continue;
    }
    if (frame.request_id == request_id) return frame;
    pending_.emplace(frame.request_id, std::move(frame));
  }
}

Result<std::uint64_t> IflsClient::SendQuery(IflsObjective objective,
                                            const WireQueryRequest& request) {
  const std::uint64_t id = next_request_id_++;
  IFLS_RETURN_NOT_OK(SendBytes(EncodeQueryFrame(id, objective, request)));
  return id;
}

Result<WireQueryResponse> IflsClient::WaitQuery(std::uint64_t request_id) {
  IFLS_ASSIGN_OR_RETURN(WireFrame frame, WaitFrame(request_id));
  if (frame.opcode == WireOpcode::kError) {
    return DecodeErrorPayload(frame.payload);
  }
  if (frame.opcode != WireOpcode::kQueryResult) {
    return Poison(Status::Internal(
        std::string("expected QueryResult, got ") +
        WireOpcodeName(frame.opcode)));
  }
  return DecodeQueryResponse(frame.payload);
}

Result<WireQueryResponse> IflsClient::Query(IflsObjective objective,
                                            const WireQueryRequest& request) {
  IFLS_ASSIGN_OR_RETURN(std::uint64_t id, SendQuery(objective, request));
  return WaitQuery(id);
}

Result<WireMutateResponse> IflsClient::Mutate(
    const WireMutateRequest& request) {
  const std::uint64_t id = next_request_id_++;
  IFLS_RETURN_NOT_OK(SendBytes(EncodeMutateFrame(id, request)));
  IFLS_ASSIGN_OR_RETURN(WireFrame frame, WaitFrame(id));
  if (frame.opcode == WireOpcode::kError) {
    return DecodeErrorPayload(frame.payload);
  }
  if (frame.opcode != WireOpcode::kMutateResult) {
    return Poison(Status::Internal(
        std::string("expected MutateResult, got ") +
        WireOpcodeName(frame.opcode)));
  }
  return DecodeMutateResponse(frame.payload);
}

Result<WireSubscription> IflsClient::Subscribe(
    const WireSubscribeRequest& request) {
  const std::uint64_t id = next_request_id_++;
  IFLS_RETURN_NOT_OK(SendBytes(EncodeSubscribeFrame(id, request)));
  IFLS_ASSIGN_OR_RETURN(WireFrame frame, WaitFrame(id));
  if (frame.opcode == WireOpcode::kError) {
    return DecodeErrorPayload(frame.payload);
  }
  if (frame.opcode != WireOpcode::kSubscribeResult) {
    return Poison(Status::Internal(
        std::string("expected SubscribeResult, got ") +
        WireOpcodeName(frame.opcode)));
  }
  IFLS_ASSIGN_OR_RETURN(WireSubscribeResponse response,
                        DecodeSubscribeResponse(frame.payload));
  WireSubscription sub;
  sub.request_id = id;
  sub.subscription_id = response.subscription_id;
  return sub;
}

Status IflsClient::Tick(const WireTickRequest& request) {
  const std::uint64_t id = next_request_id_++;
  IFLS_RETURN_NOT_OK(SendBytes(EncodeTickFrame(id, request)));
  IFLS_ASSIGN_OR_RETURN(WireFrame frame, WaitFrame(id));
  if (frame.opcode == WireOpcode::kError) {
    return DecodeErrorPayload(frame.payload);
  }
  if (frame.opcode != WireOpcode::kAck) {
    return Poison(Status::Internal(std::string("expected Ack, got ") +
                                   WireOpcodeName(frame.opcode)));
  }
  return Status::OK();
}

Status IflsClient::Unsubscribe(const WireUnsubscribeRequest& request) {
  const std::uint64_t id = next_request_id_++;
  IFLS_RETURN_NOT_OK(SendBytes(EncodeUnsubscribeFrame(id, request)));
  IFLS_ASSIGN_OR_RETURN(WireFrame frame, WaitFrame(id));
  if (frame.opcode == WireOpcode::kError) {
    return DecodeErrorPayload(frame.payload);
  }
  if (frame.opcode != WireOpcode::kAck) {
    return Poison(Status::Internal(std::string("expected Ack, got ") +
                                   WireOpcodeName(frame.opcode)));
  }
  return Status::OK();
}

Result<std::string> IflsClient::PullMetrics() {
  const std::uint64_t id = next_request_id_++;
  IFLS_RETURN_NOT_OK(
      SendBytes(EncodeEmptyFrame(WireOpcode::kMetricsPull, id)));
  IFLS_ASSIGN_OR_RETURN(WireFrame frame, WaitFrame(id));
  if (frame.opcode == WireOpcode::kError) {
    return DecodeErrorPayload(frame.payload);
  }
  if (frame.opcode != WireOpcode::kMetricsText) {
    return Poison(Status::Internal(
        std::string("expected MetricsText, got ") +
        WireOpcodeName(frame.opcode)));
  }
  IFLS_ASSIGN_OR_RETURN(WireTextResponse text,
                        DecodeTextResponse(frame.payload));
  return std::move(text.text);
}

Result<std::string> IflsClient::PullTrace() {
  const std::uint64_t id = next_request_id_++;
  IFLS_RETURN_NOT_OK(SendBytes(EncodeEmptyFrame(WireOpcode::kTracePull, id)));
  IFLS_ASSIGN_OR_RETURN(WireFrame frame, WaitFrame(id));
  if (frame.opcode == WireOpcode::kError) {
    return DecodeErrorPayload(frame.payload);
  }
  if (frame.opcode != WireOpcode::kTraceJson) {
    return Poison(Status::Internal(
        std::string("expected TraceJson, got ") +
        WireOpcodeName(frame.opcode)));
  }
  IFLS_ASSIGN_OR_RETURN(WireTextResponse text,
                        DecodeTextResponse(frame.payload));
  return std::move(text.text);
}

Status IflsClient::Ping() {
  const std::uint64_t id = next_request_id_++;
  IFLS_RETURN_NOT_OK(SendBytes(EncodeEmptyFrame(WireOpcode::kPing, id)));
  IFLS_ASSIGN_OR_RETURN(WireFrame frame, WaitFrame(id));
  if (frame.opcode == WireOpcode::kError) {
    return DecodeErrorPayload(frame.payload);
  }
  if (frame.opcode != WireOpcode::kPong) {
    return Poison(Status::Internal(std::string("expected Pong, got ") +
                                   WireOpcodeName(frame.opcode)));
  }
  return Status::OK();
}

std::optional<ReceivedPush> IflsClient::TakePush() {
  if (pushes_.empty()) return std::nullopt;
  ReceivedPush push = std::move(pushes_.front());
  pushes_.pop_front();
  return push;
}

Result<ReceivedPush> IflsClient::WaitPush() {
  while (true) {
    if (auto push = TakePush(); push.has_value()) return *std::move(push);
    if (!poisoned_.ok()) return poisoned_;
    Result<std::optional<WireFrame>> decoded = TryDecodeFrame(&ring_);
    if (!decoded.ok()) return Poison(decoded.status());
    if (!decoded.value().has_value()) {
      IFLS_RETURN_NOT_OK(ReadMore());
      continue;
    }
    WireFrame frame = std::move(*decoded.value());
    if (frame.opcode == WireOpcode::kSubscriptionPush) {
      Result<WireSubscriptionPush> push = DecodePush(frame.payload);
      if (!push.ok()) return Poison(push.status());
      return ReceivedPush{frame.request_id, std::move(push).value()};
    }
    pending_.emplace(frame.request_id, std::move(frame));
  }
}

}  // namespace ifls
