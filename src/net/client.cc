#include "src/net/client.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace ifls {

Result<std::unique_ptr<IflsClient>> IflsClient::Connect(std::uint16_t port) {
  IFLS_ASSIGN_OR_RETURN(OwnedFd fd, ConnectTcp(port));
  return std::unique_ptr<IflsClient>(new IflsClient(std::move(fd)));
}

Status IflsClient::Poison(Status status) {
  if (poisoned_.ok()) poisoned_ = status;
  fd_.Reset();
  return status;
}

Status IflsClient::SendBytes(const std::string& bytes) {
  if (!poisoned_.ok()) return poisoned_;
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::write(fd_.get(), bytes.data() + sent, bytes.size() - sent);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Poison(Status::Unavailable(std::string("send failed: ") +
                                      std::strerror(errno)));
  }
  return Status::OK();
}

Status IflsClient::ReadMore() {
  char buf[64 * 1024];
  while (true) {
    ssize_t n = ::read(fd_.get(), buf, sizeof(buf));
    if (n > 0) {
      ring_.Append(buf, static_cast<std::size_t>(n));
      return Status::OK();
    }
    if (n == 0) {
      return Poison(Status::Unavailable("connection closed by server"));
    }
    if (errno == EINTR) continue;
    return Poison(Status::Unavailable(std::string("recv failed: ") +
                                      std::strerror(errno)));
  }
}

Result<WireFrame> IflsClient::WaitFrame(std::uint64_t request_id) {
  if (!poisoned_.ok()) return poisoned_;
  while (true) {
    auto it = pending_.find(request_id);
    if (it != pending_.end()) {
      WireFrame frame = std::move(it->second);
      pending_.erase(it);
      return frame;
    }
    Result<std::optional<WireFrame>> decoded = TryDecodeFrame(&ring_);
    if (!decoded.ok()) return Poison(decoded.status());
    if (!decoded.value().has_value()) {
      IFLS_RETURN_NOT_OK(ReadMore());
      continue;
    }
    WireFrame frame = std::move(*decoded.value());
    if (frame.opcode == WireOpcode::kSubscriptionPush) {
      Result<WireSubscriptionPush> push = DecodePush(frame.payload);
      // A push we cannot decode means the stream is not trustworthy.
      if (!push.ok()) return Poison(push.status());
      pushes_.push_back(
          ReceivedPush{frame.request_id, std::move(push).value()});
      continue;
    }
    if (frame.request_id == request_id) return frame;
    pending_.emplace(frame.request_id, std::move(frame));
  }
}

Result<std::uint64_t> IflsClient::SendQuery(IflsObjective objective,
                                            const WireQueryRequest& request) {
  const std::uint64_t id = next_request_id_++;
  // Trace propagation (DESIGN.md §15): when the calling thread is inside a
  // TraceIdScope, the query frame carries its context so the server-side
  // spans land under the same trace id with the same sampling verdict. The
  // RPC's request id doubles as the parent span id — it is the one value
  // both halves of the trace already share.
  TraceContext context = CurrentTraceContext();
  const TraceContext* attached = nullptr;
  if (context.valid()) {
    context.parent_span_id = id;
    attached = &context;
  }
  IFLS_RETURN_NOT_OK(
      SendBytes(EncodeQueryFrame(id, objective, request, attached)));
  return id;
}

Result<WireQueryResponse> IflsClient::WaitQuery(std::uint64_t request_id) {
  IFLS_ASSIGN_OR_RETURN(WireFrame frame, WaitFrame(request_id));
  if (frame.opcode == WireOpcode::kError) {
    return DecodeErrorPayload(frame.payload);
  }
  if (frame.opcode != WireOpcode::kQueryResult) {
    return Poison(Status::Internal(
        std::string("expected QueryResult, got ") +
        WireOpcodeName(frame.opcode)));
  }
  return DecodeQueryResponse(frame.payload);
}

Result<WireQueryResponse> IflsClient::Query(IflsObjective objective,
                                            const WireQueryRequest& request) {
  // The client half of the distributed trace: one span covering the whole
  // RPC (serialize, send, server turnaround, receive, decode). The server
  // half nests under the same trace id via the propagated context.
  TraceSpan span(TraceCategory::kService, "rpc_query");
  IFLS_ASSIGN_OR_RETURN(std::uint64_t id, SendQuery(objective, request));
  return WaitQuery(id);
}

Result<WireMutateResponse> IflsClient::Mutate(
    const WireMutateRequest& request) {
  const std::uint64_t id = next_request_id_++;
  IFLS_RETURN_NOT_OK(SendBytes(EncodeMutateFrame(id, request)));
  IFLS_ASSIGN_OR_RETURN(WireFrame frame, WaitFrame(id));
  if (frame.opcode == WireOpcode::kError) {
    return DecodeErrorPayload(frame.payload);
  }
  if (frame.opcode != WireOpcode::kMutateResult) {
    return Poison(Status::Internal(
        std::string("expected MutateResult, got ") +
        WireOpcodeName(frame.opcode)));
  }
  return DecodeMutateResponse(frame.payload);
}

Result<WireSubscription> IflsClient::Subscribe(
    const WireSubscribeRequest& request) {
  const std::uint64_t id = next_request_id_++;
  IFLS_RETURN_NOT_OK(SendBytes(EncodeSubscribeFrame(id, request)));
  IFLS_ASSIGN_OR_RETURN(WireFrame frame, WaitFrame(id));
  if (frame.opcode == WireOpcode::kError) {
    return DecodeErrorPayload(frame.payload);
  }
  if (frame.opcode != WireOpcode::kSubscribeResult) {
    return Poison(Status::Internal(
        std::string("expected SubscribeResult, got ") +
        WireOpcodeName(frame.opcode)));
  }
  IFLS_ASSIGN_OR_RETURN(WireSubscribeResponse response,
                        DecodeSubscribeResponse(frame.payload));
  WireSubscription sub;
  sub.request_id = id;
  sub.subscription_id = response.subscription_id;
  return sub;
}

Status IflsClient::Tick(const WireTickRequest& request) {
  const std::uint64_t id = next_request_id_++;
  IFLS_RETURN_NOT_OK(SendBytes(EncodeTickFrame(id, request)));
  IFLS_ASSIGN_OR_RETURN(WireFrame frame, WaitFrame(id));
  if (frame.opcode == WireOpcode::kError) {
    return DecodeErrorPayload(frame.payload);
  }
  if (frame.opcode != WireOpcode::kAck) {
    return Poison(Status::Internal(std::string("expected Ack, got ") +
                                   WireOpcodeName(frame.opcode)));
  }
  return Status::OK();
}

Status IflsClient::Unsubscribe(const WireUnsubscribeRequest& request) {
  const std::uint64_t id = next_request_id_++;
  IFLS_RETURN_NOT_OK(SendBytes(EncodeUnsubscribeFrame(id, request)));
  IFLS_ASSIGN_OR_RETURN(WireFrame frame, WaitFrame(id));
  if (frame.opcode == WireOpcode::kError) {
    return DecodeErrorPayload(frame.payload);
  }
  if (frame.opcode != WireOpcode::kAck) {
    return Poison(Status::Internal(std::string("expected Ack, got ") +
                                   WireOpcodeName(frame.opcode)));
  }
  return Status::OK();
}

Result<std::string> IflsClient::PullMetrics() {
  const std::uint64_t id = next_request_id_++;
  IFLS_RETURN_NOT_OK(
      SendBytes(EncodeEmptyFrame(WireOpcode::kMetricsPull, id)));
  IFLS_ASSIGN_OR_RETURN(WireFrame frame, WaitFrame(id));
  if (frame.opcode == WireOpcode::kError) {
    return DecodeErrorPayload(frame.payload);
  }
  if (frame.opcode != WireOpcode::kMetricsText) {
    return Poison(Status::Internal(
        std::string("expected MetricsText, got ") +
        WireOpcodeName(frame.opcode)));
  }
  IFLS_ASSIGN_OR_RETURN(WireTextResponse text,
                        DecodeTextResponse(frame.payload));
  return std::move(text.text);
}

Result<std::string> IflsClient::PullTrace() {
  const std::uint64_t id = next_request_id_++;
  IFLS_RETURN_NOT_OK(SendBytes(EncodeEmptyFrame(WireOpcode::kTracePull, id)));
  IFLS_ASSIGN_OR_RETURN(WireFrame frame, WaitFrame(id));
  if (frame.opcode == WireOpcode::kError) {
    return DecodeErrorPayload(frame.payload);
  }
  if (frame.opcode != WireOpcode::kTraceJson) {
    return Poison(Status::Internal(
        std::string("expected TraceJson, got ") +
        WireOpcodeName(frame.opcode)));
  }
  IFLS_ASSIGN_OR_RETURN(WireTextResponse text,
                        DecodeTextResponse(frame.payload));
  return std::move(text.text);
}

Status IflsClient::Ping() {
  const std::uint64_t id = next_request_id_++;
  IFLS_RETURN_NOT_OK(SendBytes(EncodeEmptyFrame(WireOpcode::kPing, id)));
  IFLS_ASSIGN_OR_RETURN(WireFrame frame, WaitFrame(id));
  if (frame.opcode == WireOpcode::kError) {
    return DecodeErrorPayload(frame.payload);
  }
  if (frame.opcode != WireOpcode::kPong) {
    return Poison(Status::Internal(std::string("expected Pong, got ") +
                                   WireOpcodeName(frame.opcode)));
  }
  return Status::OK();
}

Result<std::int64_t> IflsClient::EstimateClockOffset(int rounds) {
  if (rounds < 1) rounds = 1;
  std::int64_t best_offset = 0;
  std::uint64_t best_rtt = 0;
  bool have_sample = false;
  for (int i = 0; i < rounds; ++i) {
    const std::uint64_t id = next_request_id_++;
    const std::uint64_t t0 = TraceNowNanos();
    IFLS_RETURN_NOT_OK(SendBytes(EncodeEmptyFrame(WireOpcode::kPing, id)));
    IFLS_ASSIGN_OR_RETURN(WireFrame frame, WaitFrame(id));
    const std::uint64_t t3 = TraceNowNanos();
    if (frame.opcode == WireOpcode::kError) {
      return DecodeErrorPayload(frame.payload);
    }
    if (frame.opcode != WireOpcode::kPong) {
      return Poison(Status::Internal(std::string("expected Pong, got ") +
                                     WireOpcodeName(frame.opcode)));
    }
    IFLS_ASSIGN_OR_RETURN(WirePongResponse pong, DecodePong(frame.payload));
    if (pong.server_recv_nanos == 0 && pong.server_send_nanos == 0) {
      return Status::InvalidArgument(
          "server pong carries no timestamps (pre-§15 server); cannot "
          "estimate clock offset");
    }
    // NTP two-way exchange: with symmetric network delay, the server clock
    // reads client + theta where theta = ((t1-t0)+(t2-t3))/2. We return
    // -theta — the value that maps server trace timestamps onto the client
    // trace clock (MergeChromeTraces' offset argument). The round with the
    // smallest network-only RTT bounds the asymmetry error tightest.
    const auto t1 = static_cast<std::int64_t>(pong.server_recv_nanos);
    const auto t2 = static_cast<std::int64_t>(pong.server_send_nanos);
    const std::int64_t offset =
        ((static_cast<std::int64_t>(t0) - t1) +
         (static_cast<std::int64_t>(t3) - t2)) /
        2;
    const std::uint64_t rtt =
        (t3 - t0) - static_cast<std::uint64_t>(t2 - t1);
    if (!have_sample || rtt < best_rtt) {
      have_sample = true;
      best_rtt = rtt;
      best_offset = offset;
    }
  }
  return best_offset;
}

std::optional<ReceivedPush> IflsClient::TakePush() {
  if (pushes_.empty()) return std::nullopt;
  ReceivedPush push = std::move(pushes_.front());
  pushes_.pop_front();
  return push;
}

Result<ReceivedPush> IflsClient::WaitPush() {
  while (true) {
    if (auto push = TakePush(); push.has_value()) return *std::move(push);
    if (!poisoned_.ok()) return poisoned_;
    Result<std::optional<WireFrame>> decoded = TryDecodeFrame(&ring_);
    if (!decoded.ok()) return Poison(decoded.status());
    if (!decoded.value().has_value()) {
      IFLS_RETURN_NOT_OK(ReadMore());
      continue;
    }
    WireFrame frame = std::move(*decoded.value());
    if (frame.opcode == WireOpcode::kSubscriptionPush) {
      Result<WireSubscriptionPush> push = DecodePush(frame.payload);
      if (!push.ok()) return Poison(push.status());
      return ReceivedPush{frame.request_id, std::move(push).value()};
    }
    pending_.emplace(frame.request_id, std::move(frame));
  }
}

}  // namespace ifls
