#ifndef IFLS_GEOMETRY_GEOMETRY_H_
#define IFLS_GEOMETRY_GEOMETRY_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <ostream>
#include <string>

namespace ifls {

/// Floor index inside a venue; 0 = ground floor.
using Level = std::int32_t;

/// A 2D point on a specific floor. Indoor coordinates are metres; the level
/// separates floors, and horizontal movement between levels is only possible
/// through stair partitions.
struct Point {
  double x = 0.0;
  double y = 0.0;
  Level level = 0;

  Point() = default;
  Point(double px, double py, Level plevel = 0) : x(px), y(py), level(plevel) {}

  bool operator==(const Point& other) const {
    return x == other.x && y == other.y && level == other.level;
  }

  std::string ToString() const;
};

std::ostream& operator<<(std::ostream& os, const Point& p);

/// Euclidean distance between two points. Points on different levels have no
/// direct planar distance; callers must route through stair doors. This
/// function asserts same-level usage in debug builds and returns the planar
/// distance (documented behaviour for distance-matrix composition where the
/// caller already accounted for vertical travel).
double PlanarDistance(const Point& a, const Point& b);

/// Squared planar distance; avoids the sqrt on hot comparison paths.
double PlanarDistanceSquared(const Point& a, const Point& b);

/// Axis-aligned rectangle on a single floor. Partitions (rooms, corridors,
/// stair wells) are rectangles: real venues are modelled by the generator as
/// unions of rectangular partitions, which is exactly how the VIP-tree paper
/// abstracts floor plans.
struct Rect {
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = 0.0;
  double max_y = 0.0;
  Level level = 0;

  Rect() = default;
  Rect(double x0, double y0, double x1, double y1, Level rlevel = 0)
      : min_x(x0), min_y(y0), max_x(x1), max_y(y1), level(rlevel) {}

  double width() const { return max_x - min_x; }
  double height() const { return max_y - min_y; }
  double area() const { return width() * height(); }
  Point center() const {
    return Point((min_x + max_x) / 2.0, (min_y + max_y) / 2.0, level);
  }

  /// True when the rect is non-degenerate (positive area).
  bool IsValid() const { return max_x > min_x && max_y > min_y; }

  /// Closed containment test; boundary points count as inside. Level must
  /// match.
  bool Contains(const Point& p) const {
    return p.level == level && p.x >= min_x && p.x <= max_x && p.y >= min_y &&
           p.y <= max_y;
  }

  /// True when the rectangles overlap or touch on the same level.
  bool TouchesOrIntersects(const Rect& other) const {
    return level == other.level && min_x <= other.max_x &&
           other.min_x <= max_x && min_y <= other.max_y && other.min_y <= max_y;
  }

  /// Smallest rect covering both. Requires same level.
  Rect Union(const Rect& other) const;

  /// Minimum planar distance from `p` to this rect (0 when contained).
  /// Requires same level.
  double MinDistance(const Point& p) const;

  /// Point inside the rect nearest to `p` (== p when contained).
  Point Clamp(const Point& p) const {
    return Point(std::clamp(p.x, min_x, max_x), std::clamp(p.y, min_y, max_y),
                 level);
  }

  bool operator==(const Rect& other) const {
    return min_x == other.min_x && min_y == other.min_y &&
           max_x == other.max_x && max_y == other.max_y &&
           level == other.level;
  }

  std::string ToString() const;
};

std::ostream& operator<<(std::ostream& os, const Rect& r);

/// True when two closed 1D intervals [a0,a1] and [b0,b1] share at least
/// `min_overlap` of length.
bool IntervalsOverlap(double a0, double a1, double b0, double b1,
                      double min_overlap);

/// Position of grid cell (x, y) along the Hilbert space-filling curve of a
/// 2^order x 2^order grid. Used to order partitions so that consecutive
/// chunks are spatially coherent (VIP-tree node formation). Precondition:
/// order <= 31 and x, y < 2^order.
std::uint64_t HilbertIndex(std::uint32_t order, std::uint32_t x,
                           std::uint32_t y);

/// If `a` and `b` are adjacent rectangles sharing a wall segment of length at
/// least `min_shared_wall`, writes the midpoint of the shared segment to
/// `*door_point` and returns true. Used by the venue generator to place
/// doors on shared walls.
bool SharedWallMidpoint(const Rect& a, const Rect& b, double min_shared_wall,
                        Point* door_point);

}  // namespace ifls

#endif  // IFLS_GEOMETRY_GEOMETRY_H_
