#include "src/geometry/geometry.h"

#include <sstream>

#include "src/common/logging.h"

namespace ifls {

std::string Point::ToString() const {
  std::ostringstream os;
  os << "(" << x << ", " << y << ", L" << level << ")";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << p.ToString();
}

double PlanarDistance(const Point& a, const Point& b) {
  return std::sqrt(PlanarDistanceSquared(a, b));
}

double PlanarDistanceSquared(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

Rect Rect::Union(const Rect& other) const {
  IFLS_DCHECK(level == other.level);
  return Rect(std::min(min_x, other.min_x), std::min(min_y, other.min_y),
              std::max(max_x, other.max_x), std::max(max_y, other.max_y),
              level);
}

double Rect::MinDistance(const Point& p) const {
  IFLS_DCHECK(p.level == level);
  const double dx = std::max({min_x - p.x, 0.0, p.x - max_x});
  const double dy = std::max({min_y - p.y, 0.0, p.y - max_y});
  return std::sqrt(dx * dx + dy * dy);
}

std::string Rect::ToString() const {
  std::ostringstream os;
  os << "[" << min_x << ", " << min_y << " .. " << max_x << ", " << max_y
     << " @L" << level << "]";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << r.ToString();
}

bool IntervalsOverlap(double a0, double a1, double b0, double b1,
                      double min_overlap) {
  const double lo = std::max(a0, b0);
  const double hi = std::min(a1, b1);
  return hi - lo >= min_overlap;
}

std::uint64_t HilbertIndex(std::uint32_t order, std::uint32_t x,
                           std::uint32_t y) {
  IFLS_DCHECK(order <= 31);
  std::uint64_t d = 0;
  for (std::uint32_t s = order == 0 ? 0 : (1u << (order - 1)); s > 0;
       s /= 2) {
    const std::uint32_t rx = (x & s) > 0 ? 1 : 0;
    const std::uint32_t ry = (y & s) > 0 ? 1 : 0;
    d += static_cast<std::uint64_t>(s) * s * ((3 * rx) ^ ry);
    // Rotate the quadrant.
    if (ry == 0) {
      if (rx == 1) {
        x = s - 1 - x;
        y = s - 1 - y;
      }
      std::swap(x, y);
    }
  }
  return d;
}

bool SharedWallMidpoint(const Rect& a, const Rect& b, double min_shared_wall,
                        Point* door_point) {
  if (a.level != b.level) return false;
  constexpr double kWallTol = 1e-9;
  // Vertical shared wall: a's right edge on b's left edge (or vice versa).
  if (std::abs(a.max_x - b.min_x) <= kWallTol ||
      std::abs(b.max_x - a.min_x) <= kWallTol) {
    const double wall_x =
        std::abs(a.max_x - b.min_x) <= kWallTol ? a.max_x : b.max_x;
    const double lo = std::max(a.min_y, b.min_y);
    const double hi = std::min(a.max_y, b.max_y);
    if (hi - lo >= min_shared_wall) {
      *door_point = Point(wall_x, (lo + hi) / 2.0, a.level);
      return true;
    }
  }
  // Horizontal shared wall.
  if (std::abs(a.max_y - b.min_y) <= kWallTol ||
      std::abs(b.max_y - a.min_y) <= kWallTol) {
    const double wall_y =
        std::abs(a.max_y - b.min_y) <= kWallTol ? a.max_y : b.max_y;
    const double lo = std::max(a.min_x, b.min_x);
    const double hi = std::min(a.max_x, b.max_x);
    if (hi - lo >= min_shared_wall) {
      *door_point = Point((lo + hi) / 2.0, wall_y, a.level);
      return true;
    }
  }
  return false;
}

}  // namespace ifls
