#ifndef IFLS_INDOOR_POINT_LOCATION_H_
#define IFLS_INDOOR_POINT_LOCATION_H_

#include <vector>

#include "src/indoor/venue.h"

namespace ifls {

/// Point-in-partition lookup over a venue, bucketed on a uniform grid per
/// level. This is the "object layer" of composite indoor indexes: generators
/// and examples use it to map raw positions (e.g. positioning-system fixes)
/// to partitions.
class PointLocator {
 public:
  /// `cells_per_axis` controls grid resolution; 32 is plenty for venues with
  /// a few thousand partitions.
  explicit PointLocator(const Venue* venue, int cells_per_axis = 32);

  /// Partition containing `p`, or kInvalidPartition when the point lies in a
  /// wall / outside every partition. Boundary points resolve to the
  /// lowest-id containing partition.
  PartitionId Locate(const Point& p) const;

 private:
  struct LevelGrid {
    Rect bounds;
    int cells = 0;
    // cell -> partition ids whose rect intersects the cell.
    std::vector<std::vector<PartitionId>> buckets;
  };

  int CellIndex(const LevelGrid& grid, double x, double y) const;

  const Venue* venue_;
  std::vector<LevelGrid> grids_;  // indexed by level
};

}  // namespace ifls

#endif  // IFLS_INDOOR_POINT_LOCATION_H_
