#ifndef IFLS_INDOOR_TYPES_H_
#define IFLS_INDOOR_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/geometry/geometry.h"

namespace ifls {

/// Dense 0-based identifiers. kInvalid* marks "no value".
using PartitionId = std::int32_t;
using DoorId = std::int32_t;
using ClientId = std::int32_t;

inline constexpr PartitionId kInvalidPartition = -1;
inline constexpr DoorId kInvalidDoor = -1;
inline constexpr ClientId kInvalidClient = -1;

/// Role of a partition in the venue. Kind does not affect distance
/// semantics; it drives generation (clients only spawn in rooms/corridors)
/// and the real-setting category machinery.
enum class PartitionKind : std::uint8_t {
  kRoom = 0,
  kCorridor = 1,
  kStairwell = 2,
};

const char* PartitionKindToString(PartitionKind kind);

/// An indoor partition: an axis-aligned rectangular unit of free movement
/// (room, corridor segment or stairwell) on one floor. Movement inside a
/// partition is unrestricted (Euclidean); leaving it requires a door.
struct Partition {
  PartitionId id = kInvalidPartition;
  Rect rect;
  PartitionKind kind = PartitionKind::kRoom;
  /// Doors on this partition's boundary, in insertion order.
  std::vector<DoorId> doors;
  /// Free-form tenant/category tag used by the real-setting experiments
  /// ("dining & entertainment", ...). Empty when unused.
  std::string category;

  Level level() const { return rect.level; }
};

/// A door connects exactly two partitions at a wall point. A *stair door*
/// connects two vertically stacked stairwell partitions on adjacent levels;
/// crossing it costs `vertical_cost` metres of walking in addition to the
/// planar legs (charged half on each side so door-to-door composition stays
/// symmetric).
struct Door {
  DoorId id = kInvalidDoor;
  /// Planar position; `position.level` is partition_a's level (display only —
  /// all distance math is planar).
  Point position;
  PartitionId partition_a = kInvalidPartition;
  PartitionId partition_b = kInvalidPartition;
  double vertical_cost = 0.0;

  bool is_stair_door() const { return vertical_cost > 0.0; }

  /// The partition on the other side of the door, or kInvalidPartition if
  /// `from` is not incident.
  PartitionId Other(PartitionId from) const {
    if (from == partition_a) return partition_b;
    if (from == partition_b) return partition_a;
    return kInvalidPartition;
  }

  bool Connects(PartitionId p) const {
    return p == partition_a || p == partition_b;
  }
};

/// A client is a static indoor point (a person / patient bed / desk). The
/// partition id is stored explicitly: queries group clients per partition,
/// and generators always know the containing partition.
struct Client {
  ClientId id = kInvalidClient;
  Point position;
  PartitionId partition = kInvalidPartition;
};

/// Walking distance between a point inside a partition and one of the
/// partition's doors: the planar leg plus half the door's vertical cost.
inline double PointToDoorDistance(const Point& p, const Door& d) {
  const double dx = p.x - d.position.x;
  const double dy = p.y - d.position.y;
  return std::sqrt(dx * dx + dy * dy) + d.vertical_cost / 2.0;
}

/// Walking distance between two doors of the same partition: planar leg plus
/// half of each door's vertical cost.
inline double DoorToDoorIntraDistance(const Door& a, const Door& b) {
  const double dx = a.position.x - b.position.x;
  const double dy = a.position.y - b.position.y;
  return std::sqrt(dx * dx + dy * dy) + a.vertical_cost / 2.0 +
         b.vertical_cost / 2.0;
}

}  // namespace ifls

#endif  // IFLS_INDOOR_TYPES_H_
