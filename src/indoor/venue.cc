#include "src/indoor/venue.h"

#include <algorithm>
#include <queue>
#include <sstream>

#include "src/common/logging.h"

namespace ifls {

const char* PartitionKindToString(PartitionKind kind) {
  switch (kind) {
    case PartitionKind::kRoom:
      return "room";
    case PartitionKind::kCorridor:
      return "corridor";
    case PartitionKind::kStairwell:
      return "stairwell";
  }
  return "?";
}

const Partition& Venue::partition(PartitionId id) const {
  IFLS_CHECK(id >= 0 && static_cast<std::size_t>(id) < partitions_.size())
      << "partition id " << id << " out of range";
  return partitions_[static_cast<std::size_t>(id)];
}

const Door& Venue::door(DoorId id) const {
  IFLS_CHECK(id >= 0 && static_cast<std::size_t>(id) < doors_.size())
      << "door id " << id << " out of range";
  return doors_[static_cast<std::size_t>(id)];
}

const std::vector<PartitionId>& Venue::Neighbors(PartitionId p) const {
  IFLS_CHECK(p >= 0 && static_cast<std::size_t>(p) < neighbors_.size());
  return neighbors_[static_cast<std::size_t>(p)];
}

bool Venue::AreAdjacent(PartitionId a, PartitionId b) const {
  const auto& nbrs = Neighbors(a);
  return std::find(nbrs.begin(), nbrs.end(), b) != nbrs.end();
}

void Venue::SetCategory(PartitionId p, std::string category) {
  IFLS_CHECK(p >= 0 && static_cast<std::size_t>(p) < partitions_.size());
  partitions_[static_cast<std::size_t>(p)].category = std::move(category);
}

Rect Venue::LevelBounds(Level level) const {
  Rect bounds;
  bool first = true;
  for (const Partition& p : partitions_) {
    if (p.level() != level) continue;
    bounds = first ? p.rect : bounds.Union(p.rect);
    first = false;
  }
  return bounds;
}

Status Venue::Validate() const {
  if (partitions_.empty()) {
    return Status::InvalidArgument("venue has no partitions");
  }
  for (std::size_t i = 0; i < partitions_.size(); ++i) {
    const Partition& p = partitions_[i];
    if (p.id != static_cast<PartitionId>(i)) {
      return Status::Internal("partition id mismatch at index " +
                              std::to_string(i));
    }
    if (!p.rect.IsValid()) {
      return Status::InvalidArgument("partition " + std::to_string(i) +
                                     " has a degenerate rect");
    }
    for (DoorId d : p.doors) {
      if (d < 0 || static_cast<std::size_t>(d) >= doors_.size()) {
        return Status::Internal("partition " + std::to_string(i) +
                                " references unknown door " +
                                std::to_string(d));
      }
      if (!doors_[static_cast<std::size_t>(d)].Connects(p.id)) {
        return Status::Internal("door " + std::to_string(d) +
                                " does not connect back to partition " +
                                std::to_string(i));
      }
    }
  }
  for (std::size_t i = 0; i < doors_.size(); ++i) {
    const Door& d = doors_[i];
    if (d.id != static_cast<DoorId>(i)) {
      return Status::Internal("door id mismatch at index " +
                              std::to_string(i));
    }
    for (PartitionId p : {d.partition_a, d.partition_b}) {
      if (p < 0 || static_cast<std::size_t>(p) >= partitions_.size()) {
        return Status::Internal("door " + std::to_string(i) +
                                " references unknown partition " +
                                std::to_string(p));
      }
      const auto& pdoors = partitions_[static_cast<std::size_t>(p)].doors;
      if (std::find(pdoors.begin(), pdoors.end(), d.id) == pdoors.end()) {
        return Status::Internal("partition " + std::to_string(p) +
                                " does not list incident door " +
                                std::to_string(i));
      }
    }
    if (d.partition_a == d.partition_b) {
      return Status::InvalidArgument("door " + std::to_string(i) +
                                     " connects a partition to itself");
    }
    if (d.vertical_cost < 0.0) {
      return Status::InvalidArgument("door " + std::to_string(i) +
                                     " has negative vertical cost");
    }
    const Level la = partitions_[static_cast<std::size_t>(d.partition_a)]
                         .level();
    const Level lb = partitions_[static_cast<std::size_t>(d.partition_b)]
                         .level();
    if (la != lb && d.vertical_cost == 0.0) {
      return Status::InvalidArgument(
          "door " + std::to_string(i) +
          " crosses levels but has zero vertical cost");
    }
  }
  // Connectivity over the accessibility graph: every partition reachable
  // from partition 0.
  std::vector<char> seen(partitions_.size(), 0);
  std::queue<PartitionId> frontier;
  frontier.push(0);
  seen[0] = 1;
  std::size_t reached = 1;
  while (!frontier.empty()) {
    PartitionId cur = frontier.front();
    frontier.pop();
    for (PartitionId nbr : Neighbors(cur)) {
      if (!seen[static_cast<std::size_t>(nbr)]) {
        seen[static_cast<std::size_t>(nbr)] = 1;
        ++reached;
        frontier.push(nbr);
      }
    }
  }
  if (reached != partitions_.size()) {
    return Status::InvalidArgument(
        "venue is disconnected: reached " + std::to_string(reached) + " of " +
        std::to_string(partitions_.size()) + " partitions");
  }
  return Status::OK();
}

std::string Venue::ToString() const {
  std::ostringstream os;
  os << "Venue{" << name_ << ": " << partitions_.size() << " partitions ("
     << num_rooms_ << " rooms), " << doors_.size() << " doors, "
     << num_levels_ << " levels}";
  return os.str();
}

}  // namespace ifls
