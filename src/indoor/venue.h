#ifndef IFLS_INDOOR_VENUE_H_
#define IFLS_INDOOR_VENUE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/indoor/types.h"

namespace ifls {

/// Immutable indoor venue: partitions, doors and the accessibility topology
/// between them. Construct through VenueBuilder (which validates geometry and
/// connectivity) or io::LoadVenue.
class Venue {
 public:
  Venue() = default;

  const std::string& name() const { return name_; }

  std::size_t num_partitions() const { return partitions_.size(); }
  std::size_t num_doors() const { return doors_.size(); }
  /// Number of distinct floors (max level + 1).
  std::int32_t num_levels() const { return num_levels_; }

  const Partition& partition(PartitionId id) const;
  const Door& door(DoorId id) const;

  const std::vector<Partition>& partitions() const { return partitions_; }
  const std::vector<Door>& doors() const { return doors_; }

  /// Door ids on the boundary of `p`.
  const std::vector<DoorId>& DoorsOf(PartitionId p) const {
    return partition(p).doors;
  }

  /// Partitions reachable from `p` in one door crossing (deduplicated).
  const std::vector<PartitionId>& Neighbors(PartitionId p) const;

  /// True when `a` and `b` share at least one door.
  bool AreAdjacent(PartitionId a, PartitionId b) const;

  /// Total count of room-kind partitions (what the paper reports as "rooms").
  std::size_t num_rooms() const { return num_rooms_; }

  /// Bounding rect of one level's partitions.
  Rect LevelBounds(Level level) const;

  /// Overrides a partition's category tag. The only permitted mutation of a
  /// built venue: categories are workload metadata, not structure, and the
  /// real-setting experiments assign them after generation.
  void SetCategory(PartitionId p, std::string category);

  /// Structural self-check: door endpoints valid, doors listed by both
  /// incident partitions, topology connected. Builders call this; IO paths
  /// call it again after deserialization.
  Status Validate() const;

  std::string ToString() const;

 private:
  friend class VenueBuilder;

  std::string name_;
  std::vector<Partition> partitions_;
  std::vector<Door> doors_;
  std::vector<std::vector<PartitionId>> neighbors_;
  std::int32_t num_levels_ = 0;
  std::size_t num_rooms_ = 0;
};

}  // namespace ifls

#endif  // IFLS_INDOOR_VENUE_H_
