#ifndef IFLS_INDOOR_VENUE_BUILDER_H_
#define IFLS_INDOOR_VENUE_BUILDER_H_

#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/indoor/venue.h"

namespace ifls {

/// Incremental venue construction with validation at Build() time.
///
/// Usage:
///   VenueBuilder b("demo");
///   PartitionId room = b.AddPartition(Rect(0, 0, 5, 5), PartitionKind::kRoom);
///   PartitionId hall = b.AddPartition(Rect(5, 0, 20, 3), kCorridor);
///   b.AddDoor(room, hall, Point(5, 1.5));
///   IFLS_ASSIGN_OR_RETURN(Venue venue, b.Build());
class VenueBuilder {
 public:
  explicit VenueBuilder(std::string name) : name_(std::move(name)) {}

  /// Adds a partition and returns its id (dense, insertion order).
  PartitionId AddPartition(const Rect& rect,
                           PartitionKind kind = PartitionKind::kRoom,
                           std::string category = "");

  /// Adds a same-level door between two partitions at `position`. Returns the
  /// door id. Geometry is not snapped: callers place the point on the shared
  /// wall (SharedWallMidpoint helps).
  DoorId AddDoor(PartitionId a, PartitionId b, const Point& position);

  /// Adds a stair door between two stacked stairwell partitions on adjacent
  /// levels. `vertical_cost` is the walking length of the staircase (metres).
  DoorId AddStairDoor(PartitionId lower, PartitionId upper,
                      const Point& position, double vertical_cost);

  /// Overrides the category tag of an existing partition.
  void SetCategory(PartitionId p, std::string category);

  std::size_t num_partitions() const { return partitions_.size(); }
  std::size_t num_doors() const { return doors_.size(); }
  const Partition& partition(PartitionId id) const {
    return partitions_[static_cast<std::size_t>(id)];
  }

  /// Finalizes the venue: builds neighbor lists, counts rooms/levels, runs
  /// Venue::Validate. The builder is left in a moved-from state on success.
  Result<Venue> Build();

 private:
  std::string name_;
  std::vector<Partition> partitions_;
  std::vector<Door> doors_;
};

}  // namespace ifls

#endif  // IFLS_INDOOR_VENUE_BUILDER_H_
