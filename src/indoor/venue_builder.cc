#include "src/indoor/venue_builder.h"

#include <algorithm>

#include "src/common/logging.h"

namespace ifls {

PartitionId VenueBuilder::AddPartition(const Rect& rect, PartitionKind kind,
                                       std::string category) {
  Partition p;
  p.id = static_cast<PartitionId>(partitions_.size());
  p.rect = rect;
  p.kind = kind;
  p.category = std::move(category);
  partitions_.push_back(std::move(p));
  return partitions_.back().id;
}

DoorId VenueBuilder::AddDoor(PartitionId a, PartitionId b,
                             const Point& position) {
  IFLS_CHECK(a >= 0 && static_cast<std::size_t>(a) < partitions_.size());
  IFLS_CHECK(b >= 0 && static_cast<std::size_t>(b) < partitions_.size());
  IFLS_CHECK(a != b) << "door must connect two distinct partitions";
  Door d;
  d.id = static_cast<DoorId>(doors_.size());
  d.position = position;
  d.partition_a = a;
  d.partition_b = b;
  d.vertical_cost = 0.0;
  doors_.push_back(d);
  partitions_[static_cast<std::size_t>(a)].doors.push_back(d.id);
  partitions_[static_cast<std::size_t>(b)].doors.push_back(d.id);
  return d.id;
}

DoorId VenueBuilder::AddStairDoor(PartitionId lower, PartitionId upper,
                                  const Point& position,
                                  double vertical_cost) {
  IFLS_CHECK(vertical_cost > 0.0);
  DoorId id = AddDoor(lower, upper, position);
  doors_[static_cast<std::size_t>(id)].vertical_cost = vertical_cost;
  return id;
}

void VenueBuilder::SetCategory(PartitionId p, std::string category) {
  IFLS_CHECK(p >= 0 && static_cast<std::size_t>(p) < partitions_.size());
  partitions_[static_cast<std::size_t>(p)].category = std::move(category);
}

Result<Venue> VenueBuilder::Build() {
  Venue venue;
  venue.name_ = std::move(name_);
  venue.partitions_ = std::move(partitions_);
  venue.doors_ = std::move(doors_);

  venue.neighbors_.assign(venue.partitions_.size(), {});
  for (const Door& d : venue.doors_) {
    auto add_neighbor = [&](PartitionId from, PartitionId to) {
      auto& nbrs = venue.neighbors_[static_cast<std::size_t>(from)];
      if (std::find(nbrs.begin(), nbrs.end(), to) == nbrs.end()) {
        nbrs.push_back(to);
      }
    };
    add_neighbor(d.partition_a, d.partition_b);
    add_neighbor(d.partition_b, d.partition_a);
  }

  Level max_level = 0;
  venue.num_rooms_ = 0;
  for (const Partition& p : venue.partitions_) {
    max_level = std::max(max_level, p.level());
    if (p.kind == PartitionKind::kRoom) ++venue.num_rooms_;
  }
  venue.num_levels_ = max_level + 1;

  IFLS_RETURN_NOT_OK(venue.Validate());
  return venue;
}

}  // namespace ifls
