#include "src/indoor/point_location.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace ifls {

PointLocator::PointLocator(const Venue* venue, int cells_per_axis)
    : venue_(venue) {
  IFLS_CHECK(venue != nullptr);
  IFLS_CHECK(cells_per_axis >= 1);
  grids_.resize(static_cast<std::size_t>(venue->num_levels()));
  for (Level level = 0; level < venue->num_levels(); ++level) {
    LevelGrid& grid = grids_[static_cast<std::size_t>(level)];
    grid.bounds = venue->LevelBounds(level);
    grid.cells = cells_per_axis;
    grid.buckets.assign(
        static_cast<std::size_t>(cells_per_axis) * cells_per_axis, {});
  }
  for (const Partition& p : venue->partitions()) {
    LevelGrid& grid = grids_[static_cast<std::size_t>(p.level())];
    if (!grid.bounds.IsValid()) continue;
    const double cw = grid.bounds.width() / grid.cells;
    const double ch = grid.bounds.height() / grid.cells;
    const int x0 = std::clamp(
        static_cast<int>((p.rect.min_x - grid.bounds.min_x) / cw), 0,
        grid.cells - 1);
    const int x1 = std::clamp(
        static_cast<int>((p.rect.max_x - grid.bounds.min_x) / cw), 0,
        grid.cells - 1);
    const int y0 = std::clamp(
        static_cast<int>((p.rect.min_y - grid.bounds.min_y) / ch), 0,
        grid.cells - 1);
    const int y1 = std::clamp(
        static_cast<int>((p.rect.max_y - grid.bounds.min_y) / ch), 0,
        grid.cells - 1);
    for (int cy = y0; cy <= y1; ++cy) {
      for (int cx = x0; cx <= x1; ++cx) {
        grid.buckets[static_cast<std::size_t>(cy) * grid.cells + cx]
            .push_back(p.id);
      }
    }
  }
}

int PointLocator::CellIndex(const LevelGrid& grid, double x, double y) const {
  const double cw = grid.bounds.width() / grid.cells;
  const double ch = grid.bounds.height() / grid.cells;
  const int cx = std::clamp(static_cast<int>((x - grid.bounds.min_x) / cw), 0,
                            grid.cells - 1);
  const int cy = std::clamp(static_cast<int>((y - grid.bounds.min_y) / ch), 0,
                            grid.cells - 1);
  return cy * grid.cells + cx;
}

PartitionId PointLocator::Locate(const Point& p) const {
  if (p.level < 0 || static_cast<std::size_t>(p.level) >= grids_.size()) {
    return kInvalidPartition;
  }
  const LevelGrid& grid = grids_[static_cast<std::size_t>(p.level)];
  if (!grid.bounds.IsValid() || !grid.bounds.Contains(p)) {
    return kInvalidPartition;
  }
  PartitionId best = kInvalidPartition;
  for (PartitionId id :
       grid.buckets[static_cast<std::size_t>(CellIndex(grid, p.x, p.y))]) {
    if (venue_->partition(id).rect.Contains(p)) {
      if (best == kInvalidPartition || id < best) best = id;
    }
  }
  return best;
}

}  // namespace ifls
