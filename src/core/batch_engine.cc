#include "src/core/batch_engine.h"

#include <algorithm>
#include <utility>

#include "src/common/stopwatch.h"

namespace ifls {

BatchQueryEngine::BatchQueryEngine(BatchEngineOptions options)
    : options_(options),
      pool_(options.num_threads <= 0 ? ThreadPool::DefaultThreads()
                                     : options.num_threads) {}

BatchQueryOutcome BatchQueryEngine::RunOne(const BatchQuery& query) const {
  BatchQueryOutcome outcome;
  Result<IflsResult> solved =
      SolveWithObjective(query.objective, query.context,
                         {options_.minmax, options_.mindist, options_.maxsum});
  if (solved.ok()) {
    outcome.result = std::move(solved).value();
  } else {
    outcome.status = solved.status();
  }
  return outcome;
}

std::vector<BatchQueryOutcome> BatchQueryEngine::Run(
    const std::vector<BatchQuery>& queries) {
  Stopwatch watch;
  std::vector<BatchQueryOutcome> outcomes(queries.size());
  // Each iteration writes only its own slot; ParallelFor's dynamic claiming
  // decides *who* runs a query but can never change *what* it computes.
  pool_.ParallelFor(queries.size(), [&](std::size_t i) {
    outcomes[i] = RunOne(queries[i]);
  });
  FillReport(outcomes, watch.ElapsedSeconds(), pool_.num_threads());
  return outcomes;
}

std::vector<BatchQueryOutcome> BatchQueryEngine::RunSequential(
    const std::vector<BatchQuery>& queries) {
  Stopwatch watch;
  std::vector<BatchQueryOutcome> outcomes(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    outcomes[i] = RunOne(queries[i]);
  }
  FillReport(outcomes, watch.ElapsedSeconds(), 1);
  return outcomes;
}

void BatchQueryEngine::FillReport(
    const std::vector<BatchQueryOutcome>& outcomes, double wall_seconds,
    int num_threads) {
  report_ = BatchRunReport{};
  report_.num_threads = num_threads;
  report_.num_queries = outcomes.size();
  report_.wall_seconds = wall_seconds;
  report_.queries_per_second =
      wall_seconds > 0.0 ? static_cast<double>(outcomes.size()) / wall_seconds
                         : 0.0;
  for (const BatchQueryOutcome& o : outcomes) {
    if (!o.status.ok()) {
      ++report_.num_failed;
      continue;
    }
    report_.total_distance_computations += o.result.stats.distance_computations;
    report_.max_peak_memory_bytes = std::max(
        report_.max_peak_memory_bytes, o.result.stats.peak_memory_bytes);
  }
}

}  // namespace ifls
