#ifndef IFLS_CORE_MINDIST_H_
#define IFLS_CORE_MINDIST_H_

#include "src/core/query.h"

namespace ifls {

/// Options for the MinDist extension solver.
struct MinDistOptions {
  /// Group clients by partition (same knob as EfficientOptions).
  bool group_clients = true;
};

/// MinDist variant of the efficient approach (paper §7): finds the candidate
/// minimizing the *total* (equivalently average) distance of the clients to
/// their nearest facilities. Single bottom-up pass; every candidate carries
/// a total-distance aggregate that is a lower bound until the candidate has
/// been retrieved for every surviving client, and the answer is emitted once
/// the bound-minimizing candidate's total is exact.
///
/// Contract: when `found`, `answer` minimizes sum_c min(NEF(c), iDist(c, n))
/// and `objective` is that exact total. found == false only when Fn is
/// empty.
Result<IflsResult> SolveMinDist(const IflsContext& ctx,
                                const MinDistOptions& options = {});

}  // namespace ifls

#endif  // IFLS_CORE_MINDIST_H_
