#include "src/core/minmax_baseline.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <vector>

#include "src/common/logging.h"
#include "src/common/memory_tracker.h"
#include "src/common/trace.h"

namespace ifls {
namespace {

template <typename T>
using TrackedVector = std::vector<T, TrackingAllocator<T>>;

/// One entry of the sorted list Ls: a client and its nearest existing
/// facility distance.
struct NefEntry {
  std::size_t client_index = 0;
  PartitionId nearest_existing = kInvalidPartition;
  double distance = 0.0;
};

/// A surviving candidate: its id and the maximum distance to the clients
/// considered so far (rules 3(a)/3(b) both compare against this running max).
struct CandidateRecord {
  PartitionId id = kInvalidPartition;
  double max_considered_distance = 0.0;
};

}  // namespace

Result<IflsResult> SolveModifiedMinMax(const IflsContext& ctx,
                                       const MinMaxBaselineOptions& options) {
  IFLS_RETURN_NOT_OK(ValidateContext(ctx));
  IflsResult result;
  SolverScope scope(*ctx.oracle, &result.stats);
  TraceSpan solver_span(TraceCategory::kSolver, "minmax_baseline");
  QueryStats& stats = result.stats;

  // Degenerate inputs first.
  if (ctx.candidates.empty()) {
    result.found = false;
    result.objective = NoFacilityMinMax(ctx);
    scope.Finish();
    return result;
  }
  if (ctx.clients.empty()) {
    // Every candidate yields objective 0; return the first.
    result.found = true;
    result.answer = ctx.candidates.front();
    result.objective = 0.0;
    scope.Finish();
    return result;
  }

  // Step 1: nearest existing facility per client (paper: VIP-tree NN search
  // over the offline Fe index), sorted descending by distance.
  const FacilityIndex* fe_index = options.offline_existing_index;
  std::unique_ptr<FacilityIndex> owned_index;
  if (fe_index == nullptr) {
    owned_index = std::make_unique<FacilityIndex>(ctx.oracle, ctx.existing);
    fe_index = owned_index.get();
  }
  IFLS_CHECK(fe_index->num_existing() ==
             static_cast<std::int32_t>(ctx.existing.size()))
      << "offline index does not match the context's existing set";

  TrackedVector<NefEntry> sorted_list;
  {
    TraceSpan span(TraceCategory::kSolver, "baseline/nn_phase");
    sorted_list.reserve(ctx.clients.size());
    for (std::size_t i = 0; i < ctx.clients.size(); ++i) {
      const Client& c = ctx.clients[i];
      NnSearchStats nn_stats;
      std::optional<NnResult> nn =
          NearestFacility(*fe_index, c.position, c.partition,
                          FacilityFilter::kExistingOnly, &nn_stats);
      stats.AddNnStats(nn_stats);
      ++stats.nn_searches;
      NefEntry entry;
      entry.client_index = i;
      if (nn.has_value()) {
        entry.nearest_existing = nn->facility;
        entry.distance = nn->distance;
      } else {
        entry.nearest_existing = kInvalidPartition;
        entry.distance = kInfDistance;  // no existing facilities at all
      }
      sorted_list.push_back(entry);
    }
    std::sort(sorted_list.begin(), sorted_list.end(),
              [](const NefEntry& a, const NefEntry& b) {
                return a.distance > b.distance;
              });
  }
  // Covers steps 2-5 (candidate seeding, refinement, Find_Ans) through every
  // return path below.
  TraceSpan refine_span(TraceCategory::kSolver, "baseline/refine");

  auto client_of = [&](std::size_t rank) -> const Client& {
    return ctx.clients[sorted_list[rank].client_index];
  };

  // Step 2: candidate answer set from the worst-off client.
  TrackedVector<CandidateRecord> ca;
  for (PartitionId n : ctx.candidates) {
    const Client& c0 = client_of(0);
    const double d = ctx.oracle->PointToPartition(c0.position, c0.partition, n);
    ++stats.distance_computations;
    if (d < sorted_list[0].distance) {
      ca.push_back({n, d});
    }
  }
  ++stats.check_answer_calls;

  // Step 3: refinement, one client at a time in descending NEF order.
  TrackedVector<CandidateRecord> ca_prev = ca;
  std::size_t i = 1;
  double emptying_threshold = sorted_list[0].distance;
  while (i < sorted_list.size() && ca.size() > 1) {
    const double threshold = sorted_list[i].distance;
    ca_prev = ca;
    TrackedVector<CandidateRecord> next;
    next.reserve(ca.size());
    for (CandidateRecord rec : ca) {
      const Client& ci = client_of(i);
      const double d =
          ctx.oracle->PointToPartition(ci.position, ci.partition, rec.id);
      ++stats.distance_computations;
      // Rule 3(a): drop candidates no closer than the client's NEF.
      // Rule 3(b): drop candidates whose distance to a previously considered
      // client exceeds the current client's NEF.
      if (d < threshold && rec.max_considered_distance <= threshold) {
        rec.max_considered_distance =
            std::max(rec.max_considered_distance, d);
        next.push_back(rec);
      }
    }
    if (next.empty()) emptying_threshold = threshold;
    ca = std::move(next);
    ++i;
  }

  // Step 5: Find_Ans. When refinement emptied CA, fall back to the previous
  // set; the emptying client's NEF clamps every value from below (that
  // client's contribution cannot drop under its NEF for any fallback
  // candidate).
  const TrackedVector<CandidateRecord>* pool = &ca;
  double clamp = 0.0;
  if (ca.empty()) {
    pool = &ca_prev;
    clamp = emptying_threshold;
  } else if (i < sorted_list.size()) {
    clamp = sorted_list[i].distance;  // first unconsidered client's NEF
  }
  if (pool->empty()) {
    // No candidate improves the worst-off client.
    result.found = false;
    result.objective = sorted_list[0].distance;
    scope.Finish();
    return result;
  }
  const CandidateRecord* best = nullptr;
  double best_value = kInfDistance;
  for (const CandidateRecord& rec : *pool) {
    const double value = std::max(rec.max_considered_distance, clamp);
    if (value < best_value) {
      best_value = value;
      best = &rec;
    }
  }
  result.found = true;
  result.answer = best->id;
  result.objective = best_value;
  scope.Finish();
  return result;
}

}  // namespace ifls
