#ifndef IFLS_CORE_BRUTE_FORCE_H_
#define IFLS_CORE_BRUTE_FORCE_H_

#include "src/core/query.h"

namespace ifls {

/// Exhaustive MinMax solver: evaluates every candidate against every client
/// (O(|C| * (|Fe| + |Fn|)) exact indoor distances) and returns the argmin.
/// The answer is always optimal; used as the correctness oracle for the
/// baseline and the efficient approach, and as the "no pruning at all"
/// comparator in ablation benches. Returns found=false only when Fn is
/// empty; ties with the no-new-facility objective still return the argmin.
Result<IflsResult> SolveBruteForceMinMax(const IflsContext& ctx);

/// Exhaustive top-k MinMax: the k candidates with the smallest exact MinMax
/// objectives, ascending, in `ranked` (fewer when |Fn| < k). Candidates
/// provably outside the top k are skipped via incumbent pruning, so ranked
/// entries always carry exact objectives.
Result<IflsResult> SolveBruteForceTopKMinMax(const IflsContext& ctx, int k);

/// Exhaustive MinDist solver (paper §7 extension oracle).
Result<IflsResult> SolveBruteForceMinDist(const IflsContext& ctx);

/// Exhaustive MaxSum solver (paper §7 extension oracle). `objective` is the
/// maximized client count.
Result<IflsResult> SolveBruteForceMaxSum(const IflsContext& ctx);

}  // namespace ifls

#endif  // IFLS_CORE_BRUTE_FORCE_H_
