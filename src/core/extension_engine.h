#ifndef IFLS_CORE_EXTENSION_ENGINE_H_
#define IFLS_CORE_EXTENSION_ENGINE_H_

// Internal header: shared incremental-retrieval engine behind the MinDist
// and MaxSum solvers (paper §7). Not part of the public API surface; include
// mindist.h / maxsum.h instead.

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/logging.h"
#include "src/common/memory_tracker.h"
#include "src/core/query.h"

namespace ifls {
namespace internal {

template <typename T>
using TrackedVector = std::vector<T, TrackingAllocator<T>>;

using RetrievedMap =
    std::unordered_map<PartitionId, double, std::hash<PartitionId>,
                       std::equal_to<PartitionId>,
                       TrackingAllocator<std::pair<const PartitionId, double>>>;

using EntitySet =
    std::unordered_set<std::int64_t, std::hash<std::int64_t>,
                       std::equal_to<std::int64_t>,
                       TrackingAllocator<std::int64_t>>;

/// Generic single-pass bottom-up retrieval over a distance oracle's node
/// hierarchy (the paper's Algorithm 3 traversal) parameterized by an
/// objective policy. The policy
/// maintains per-candidate aggregates and decides when the answer is
/// certain:
///
///   struct Policy {
///     void Init(std::size_t num_candidates);
///     // Candidate `ord` retrieved for a surviving client at distance d.
///     void OnCandidateEvent(std::size_t ord, double dist);
///     // Client pruned (Lemma 5.1). `nef` is its exact nearest-existing
///     // distance; `retrieved` holds its candidate retrievals; entries with
///     // dist <= d_low were previously counted via OnCandidateEvent.
///     void OnPrune(double nef, const RetrievedMap& retrieved, double d_low,
///                  const std::vector<std::int32_t>& ordinal_of_partition);
///     // Best certain candidate given `alive` uncovered clients and the
///     // current global distance; returns ordinal or -1 when undecided.
///     std::int32_t TryDecide(std::int64_t alive, double gd,
///                            double* objective) const;
///   };
///
/// Correctness rests on the same invariants as the MinMax solver: events are
/// processed in ascending distance order, every facility with iMinD <= Gd
/// has been retrieved for every surviving client, and a pruned client's
/// unretrieved candidates are provably no closer than its NEF.
template <typename Policy>
class IncrementalObjectiveSolver {
 public:
  IncrementalObjectiveSolver(const IflsContext& ctx, bool group_clients,
                             IflsResult* result)
      : ctx_(ctx),
        group_clients_(group_clients),
        oracle_(*ctx.oracle),
        venue_(ctx.venue()),
        result_(result),
        stats_(result->stats),
        index_(ctx.oracle, ctx.existing) {}

  Policy* policy() { return &policy_; }

  void Run() {
    if (ctx_.candidates.empty()) {
      result_->found = false;
      result_->objective = 0.0;
      return;
    }
    index_.AddCandidates(ctx_.candidates);
    ordinal_.assign(venue_.num_partitions(), -1);
    for (std::size_t i = 0; i < ctx_.candidates.size(); ++i) {
      ordinal_[static_cast<std::size_t>(ctx_.candidates[i])] =
          static_cast<std::int32_t>(i);
    }
    policy_.Init(ctx_.candidates.size());

    InitClients();
    ProcessEvents(0.0);
    if (TryFinish()) return;

    BuildGroups();
    for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
      Push(static_cast<std::uint32_t>(gi),
           oracle_.LeafOf(groups_[gi].partition), false, 0.0);
    }
    while (!queue_.empty()) {
      const Entry top = queue_.top();
      queue_.pop();
      ++stats_.queue_pops;
      gd_ = top.key;
      Group& g = groups_[top.group];
      if (g.alive > 0) {
        if (top.is_partition) {
          AddFacilityToGroup(g, top.entity);
        } else {
          ExpandNode(top.group, top.entity);
        }
      }
      ProcessEvents(gd_);
      if (TryFinish()) return;
    }
    gd_ = kInfDistance;
    ProcessEvents(kInfDistance);
    if (TryFinish()) return;
    // Unreachable for non-empty candidate sets in a connected venue: once
    // everything is retrieved every aggregate is exact.
    IFLS_LOG(FATAL) << "incremental solver failed to converge";
  }

 private:
  struct Entry {
    double key = 0.0;
    std::uint32_t group = 0;
    std::int32_t entity = -1;
    bool is_partition = false;
    bool operator>(const Entry& other) const { return key > other.key; }
  };

  struct Event {
    double dist = 0.0;
    std::uint32_t client = 0;
    PartitionId facility = kInvalidPartition;
    bool existing = false;
    // Candidate events sort before existing events at equal distance so a
    // prune sees every same-distance candidate retrieval already counted.
    bool operator>(const Event& other) const {
      if (dist != other.dist) return dist > other.dist;
      return existing && !other.existing;
    }
  };

  struct ClientState {
    bool alive = true;
    double best_existing = kInfDistance;
    std::uint32_t group = 0;
    RetrievedMap retrieved;  // candidates only
  };

  struct Group {
    PartitionId partition = kInvalidPartition;
    TrackedVector<std::uint32_t> clients;
    std::int32_t alive = 0;
    EntitySet visited;
  };

  static std::int64_t Encode(std::int32_t entity, bool is_partition) {
    return is_partition ? (static_cast<std::int64_t>(1) << 32) + entity
                        : entity;
  }

  void InitClients() {
    clients_.resize(ctx_.clients.size());
    alive_count_ = static_cast<std::int64_t>(ctx_.clients.size());
    for (std::size_t i = 0; i < ctx_.clients.size(); ++i) {
      const Client& c = ctx_.clients[i];
      if (index_.IsFacility(c.partition)) {
        Record(static_cast<std::uint32_t>(i), c.partition, 0.0);
      }
    }
  }

  void BuildGroups() {
    std::unordered_map<PartitionId, std::uint32_t> group_of;
    for (std::size_t i = 0; i < ctx_.clients.size(); ++i) {
      if (!clients_[i].alive) continue;
      std::uint32_t gi;
      if (group_clients_) {
        auto [it, inserted] = group_of.try_emplace(
            ctx_.clients[i].partition,
            static_cast<std::uint32_t>(groups_.size()));
        if (inserted) {
          groups_.emplace_back();
          groups_.back().partition = ctx_.clients[i].partition;
        }
        gi = it->second;
      } else {
        groups_.emplace_back();
        groups_.back().partition = ctx_.clients[i].partition;
        gi = static_cast<std::uint32_t>(groups_.size() - 1);
      }
      groups_[gi].clients.push_back(static_cast<std::uint32_t>(i));
      ++groups_[gi].alive;
      clients_[i].group = gi;
    }
  }

  void Push(std::uint32_t group_index, std::int32_t entity, bool is_partition,
            double key) {
    Group& g = groups_[group_index];
    if (!g.visited.insert(Encode(entity, is_partition)).second) return;
    queue_.push({key, group_index, entity, is_partition});
    ++stats_.queue_pushes;
  }

  void ExpandNode(std::uint32_t group_index, NodeId node_id) {
    Group& g = groups_[group_index];
    const NodeId parent = oracle_.Parent(node_id);
    if (parent != kInvalidNode &&
        !g.visited.contains(Encode(parent, false))) {
      ++stats_.lower_bound_computations;
      Push(group_index, parent, false,
           oracle_.PartitionToNode(g.partition, parent));
    }
    if (oracle_.IsLeaf(node_id)) {
      for (PartitionId q : oracle_.NodePartitions(node_id)) {
        if (q == g.partition || !index_.IsFacility(q)) continue;
        if (g.visited.contains(Encode(q, true))) continue;
        ++stats_.lower_bound_computations;
        Push(group_index, q, true,
             oracle_.PartitionToPartition(g.partition, q));
      }
    } else {
      for (NodeId ch : oracle_.Children(node_id)) {
        if (index_.SubtreeCount(ch) == 0) continue;
        if (g.visited.contains(Encode(ch, false))) continue;
        ++stats_.lower_bound_computations;
        Push(group_index, ch, false, oracle_.PartitionToNode(g.partition, ch));
      }
    }
  }

  void AddFacilityToGroup(Group& g, PartitionId facility) {
    const Partition& home = venue_.partition(g.partition);
    if (g.partition != facility) {
      // Generalized Case-1 reuse (see EfficientSolver::AddFacilityToGroup).
      base_distances_.clear();
      base_distances_.reserve(home.doors.size());
      for (DoorId d : home.doors) {
        base_distances_.push_back(oracle_.DoorToPartition(d, facility));
      }
      ++stats_.distance_computations;
      for (std::uint32_t ci : g.clients) {
        if (!clients_[ci].alive) continue;
        const Client& c = ctx_.clients[ci];
        double dist = kInfDistance;
        for (std::size_t i = 0; i < home.doors.size(); ++i) {
          const double cand =
              PointToDoorDistance(c.position, venue_.door(home.doors[i])) +
              base_distances_[i];
          if (cand < dist) dist = cand;
        }
        Record(ci, facility, dist);
      }
      return;
    }
    for (std::uint32_t ci : g.clients) {
      if (!clients_[ci].alive) continue;
      const Client& c = ctx_.clients[ci];
      const double dist =
          oracle_.PointToPartition(c.position, c.partition, facility);
      ++stats_.distance_computations;
      Record(ci, facility, dist);
    }
  }

  void Record(std::uint32_t ci, PartitionId facility, double dist) {
    ClientState& state = clients_[ci];
    if (index_.IsExisting(facility)) {
      state.best_existing = std::min(state.best_existing, dist);
      events_.push({dist, ci, facility, true});
    } else {
      state.retrieved.emplace(facility, dist);
      events_.push({dist, ci, facility, false});
    }
    ++stats_.facilities_retrieved;
  }

  void ProcessEvents(double bound) {
    while (!events_.empty() && events_.top().dist <= bound) {
      const Event e = events_.top();
      events_.pop();
      ClientState& state = clients_[e.client];
      if (!state.alive) continue;
      d_low_ = std::max(d_low_, e.dist);
      if (e.existing) {
        state.alive = false;
        ++stats_.clients_pruned;
        --alive_count_;
        Group& g = groups_.empty() ? dummy_group_ : groups_[state.group];
        if (!groups_.empty() && g.alive > 0) --g.alive;
        policy_.OnPrune(state.best_existing, state.retrieved, d_low_,
                        ordinal_);
      } else {
        policy_.OnCandidateEvent(
            static_cast<std::size_t>(
                ordinal_[static_cast<std::size_t>(e.facility)]),
            e.dist);
      }
    }
  }

  bool TryFinish() {
    ++stats_.check_answer_calls;
    double objective = 0.0;
    const std::int32_t ord = policy_.TryDecide(alive_count_, gd_, &objective);
    if (ord < 0) return false;
    result_->found = true;
    result_->answer = ctx_.candidates[static_cast<std::size_t>(ord)];
    result_->objective = objective;
    return true;
  }

  const IflsContext& ctx_;
  const bool group_clients_;
  const DistanceOracle& oracle_;
  const Venue& venue_;
  IflsResult* result_;
  QueryStats& stats_;
  FacilityIndex index_;
  Policy policy_;

  TrackedVector<ClientState> clients_;
  TrackedVector<Group> groups_;
  Group dummy_group_;
  std::priority_queue<Entry, TrackedVector<Entry>, std::greater<Entry>>
      queue_;
  std::priority_queue<Event, TrackedVector<Event>, std::greater<Event>>
      events_;
  std::vector<std::int32_t> ordinal_;
  std::vector<double> base_distances_;  // AddFacilityToGroup scratch

  double gd_ = 0.0;
  double d_low_ = 0.0;
  std::int64_t alive_count_ = 0;
};

}  // namespace internal
}  // namespace ifls

#endif  // IFLS_CORE_EXTENSION_ENGINE_H_
