#ifndef IFLS_CORE_MAXSUM_H_
#define IFLS_CORE_MAXSUM_H_

#include "src/core/query.h"

namespace ifls {

/// Options for the MaxSum extension solver.
struct MaxSumOptions {
  /// Group clients by partition (same knob as EfficientOptions).
  bool group_clients = true;
};

/// MaxSum variant of the efficient approach (paper §7): finds the candidate
/// maximizing the number of clients whose nearest facility would become the
/// new one, i.e. #{c : iDist(c, n) < NEF(c)}. Single bottom-up pass; every
/// candidate carries a count whose upper bound shrinks as retrieval
/// progresses, and the answer is emitted once the bound-maximizing
/// candidate's count is exact.
///
/// Contract: when `found`, `answer` maximizes the count and `objective` is
/// that exact count. found == false only when Fn is empty.
Result<IflsResult> SolveMaxSum(const IflsContext& ctx,
                               const MaxSumOptions& options = {});

}  // namespace ifls

#endif  // IFLS_CORE_MAXSUM_H_
