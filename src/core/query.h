#ifndef IFLS_CORE_QUERY_H_
#define IFLS_CORE_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/memory_tracker.h"
#include "src/common/status.h"
#include "src/index/distance_oracle.h"
#include "src/index/facility_index.h"
#include "src/index/nn_search.h"

namespace ifls {

/// Immutable inputs of one IFLS query: the distance oracle over the indexed
/// venue, the existing facility set Fe, the candidate location set Fn and the
/// client set C. Facilities are partitions (paper §3); the two sets must be
/// disjoint. Any DistanceOracle backend works (VIP-tree, door-graph,
/// brute-force); solvers depend only on the interface.
struct IflsContext {
  const DistanceOracle* oracle = nullptr;
  std::vector<PartitionId> existing;
  std::vector<PartitionId> candidates;
  std::vector<Client> clients;

  const Venue& venue() const { return oracle->venue(); }
};

/// Checks ids, ranges, client/partition consistency and Fe/Fn disjointness.
Status ValidateContext(const IflsContext& ctx);

/// Work and memory counters recorded by every solver. Memory is the logical
/// high-water mark of the query's data structures (DESIGN.md §2, item 2),
/// reproducing the paper's "memory cost" metric deterministically.
struct QueryStats {
  /// Wall-clock solve time, stamped by SolverScope::Finish().
  double elapsed_seconds = 0.0;
  /// Exact point-based indoor distance evaluations (paper: "indoor distance
  /// computations").
  std::int64_t distance_computations = 0;
  /// iMinD lower-bound evaluations.
  std::int64_t lower_bound_computations = 0;
  /// Traversal priority-queue traffic (solver main loop + NN searches via
  /// AddNnStats); the paper's proxy for index navigation effort.
  std::int64_t queue_pushes = 0;
  std::int64_t queue_pops = 0;
  /// Complete NN searches issued (baseline only).
  std::int64_t nn_searches = 0;
  /// Clients eliminated by the pruning rules before their facility lists
  /// completed (paper §5.2).
  std::int64_t clients_pruned = 0;
  /// Facility-to-client list insertions (EA) / candidate retrievals.
  std::int64_t facilities_retrieved = 0;
  /// Invocations of Check_List / Check_Answer (paper Algorithm 2/3
  /// subroutines; the baseline counts its step-2 seeding as one
  /// check_answer call).
  std::int64_t check_list_calls = 0;
  std::int64_t check_answer_calls = 0;
  /// Logical high-water mark of tracked solver allocations, from the
  /// MemoryTracker installed by SolverScope.
  std::int64_t peak_memory_bytes = 0;
  /// Index-level counters attributed to this query. Hits/misses cover the
  /// oracle's door-distance memo (sharded concurrent cache); they are
  /// attributed per-thread through the scope's counter sink, so concurrent
  /// queries against one shared oracle each see exactly their own traffic.
  std::uint64_t door_distance_evals = 0;
  std::uint64_t matrix_lookups = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// Blocked min-plus kernel invocations and full-graph Dijkstra fallbacks
  /// attributed to this query (same per-thread sink as the fields above);
  /// the per-query cost ledger keys its production attribution on these.
  std::uint64_t kernel_invocations = 0;
  std::uint64_t dijkstra_fallbacks = 0;

  void AddNnStats(const NnSearchStats& nn) {
    queue_pushes += nn.queue_pushes;
    queue_pops += nn.queue_pops;
    distance_computations += nn.distance_computations;
  }

  std::string ToString() const;
};

/// Answer of an IFLS query.
///
/// `found == true`: `answer` is an optimal candidate and `objective` is the
/// solver's reported objective value for it (MinMax: the minimized maximum
/// distance; MinDist: the minimized total distance; MaxSum: the maximized
/// client count — see each solver's contract for reporting caveats).
///
/// `found == false`: no candidate location can improve the objective over
/// the existing facilities alone (paper: "no answer exists"); `objective`
/// then holds the no-new-facility value.
struct IflsResult {
  PartitionId answer = kInvalidPartition;
  bool found = false;
  double objective = 0.0;
  /// Filled by top-k requests (EfficientOptions::top_k > 1 or
  /// SolveBruteForceTopKMinMax): up to k candidates ascending by *exact*
  /// objective value. `answer`/`objective` mirror the first entry.
  std::vector<std::pair<PartitionId, double>> ranked;
  QueryStats stats;
};

/// RAII helper every solver uses: installs memory tracking plus a
/// thread-local oracle-counter sink, and on Finish() stamps elapsed time,
/// peak memory and the query's own index-counter totals into the stats.
/// Because both the tracker scope and the counter sink are thread-local, any
/// number of solvers may run concurrently against one shared oracle and each
/// query's stats remain exactly its own work.
class SolverScope {
 public:
  explicit SolverScope(const DistanceOracle& oracle, QueryStats* stats);
  ~SolverScope();

  SolverScope(const SolverScope&) = delete;
  SolverScope& operator=(const SolverScope&) = delete;

  MemoryTracker* tracker() { return &tracker_; }

  /// Call once, at solver exit.
  void Finish();

 private:
  QueryStats* stats_;
  MemoryTracker tracker_;
  ScopedMemoryTracking scope_;
  OracleCounters counters_;
  ScopedOracleCounterSink counter_sink_;
  double start_seconds_;
  bool finished_ = false;
};

// ---------------------------------------------------------------------------
// Objective evaluation helpers (exact, index-backed; used by the brute-force
// solver and by tests to certify the optimized solvers' answers).
// ---------------------------------------------------------------------------

/// iDist(c, NN(c, Fe)) for one client; kInfDistance when Fe is empty.
double NearestExistingDistance(const IflsContext& ctx, const Client& c);

/// MinMax objective of candidate `n`:
///   max_c min(NEF(c), iDist(c, n)).
double EvaluateMinMax(const IflsContext& ctx, PartitionId n);

/// MinMax objective with no new facility: max_c NEF(c).
double NoFacilityMinMax(const IflsContext& ctx);

/// MinDist objective of candidate `n`: sum_c min(NEF(c), iDist(c, n)).
double EvaluateMinDist(const IflsContext& ctx, PartitionId n);

/// MinDist objective with no new facility: sum_c NEF(c).
double NoFacilityMinDist(const IflsContext& ctx);

/// MaxSum objective of candidate `n`: number of clients whose nearest
/// facility becomes `n`, i.e. #{c : iDist(c, n) < NEF(c)}.
double EvaluateMaxSum(const IflsContext& ctx, PartitionId n);

}  // namespace ifls

#endif  // IFLS_CORE_QUERY_H_
