#include "src/core/query.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "src/common/logging.h"
#include "src/common/stopwatch.h"

namespace ifls {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Status ValidateContext(const IflsContext& ctx) {
  if (ctx.oracle == nullptr) {
    return Status::InvalidArgument("context has no index");
  }
  const Venue& venue = ctx.venue();
  const auto num_partitions = static_cast<PartitionId>(venue.num_partitions());
  std::vector<char> kind(static_cast<std::size_t>(num_partitions), 0);
  for (PartitionId p : ctx.existing) {
    if (p < 0 || p >= num_partitions) {
      return Status::InvalidArgument("existing facility id out of range: " +
                                     std::to_string(p));
    }
    if (kind[static_cast<std::size_t>(p)] != 0) {
      return Status::InvalidArgument("duplicate existing facility: " +
                                     std::to_string(p));
    }
    kind[static_cast<std::size_t>(p)] = 1;
  }
  for (PartitionId p : ctx.candidates) {
    if (p < 0 || p >= num_partitions) {
      return Status::InvalidArgument("candidate location id out of range: " +
                                     std::to_string(p));
    }
    if (kind[static_cast<std::size_t>(p)] == 1) {
      return Status::InvalidArgument(
          "partition is both existing facility and candidate: " +
          std::to_string(p));
    }
    if (kind[static_cast<std::size_t>(p)] == 2) {
      return Status::InvalidArgument("duplicate candidate location: " +
                                     std::to_string(p));
    }
    kind[static_cast<std::size_t>(p)] = 2;
  }
  for (const Client& c : ctx.clients) {
    if (c.partition < 0 || c.partition >= num_partitions) {
      return Status::InvalidArgument("client partition out of range");
    }
    if (!venue.partition(c.partition).rect.Contains(c.position)) {
      return Status::InvalidArgument(
          "client " + std::to_string(c.id) +
          " position lies outside its partition");
    }
  }
  return Status::OK();
}

std::string QueryStats::ToString() const {
  std::ostringstream os;
  os << "QueryStats{time=" << elapsed_seconds << "s"
     << ", dist=" << distance_computations
     << ", lb=" << lower_bound_computations << ", push=" << queue_pushes
     << ", pop=" << queue_pops << ", nn=" << nn_searches
     << ", pruned=" << clients_pruned
     << ", retrieved=" << facilities_retrieved
     << ", cache_hit=" << cache_hits << ", cache_miss=" << cache_misses
     << ", peak_mem=" << peak_memory_bytes / 1024.0 / 1024.0 << "MiB}";
  return os.str();
}

SolverScope::SolverScope(const DistanceOracle& oracle, QueryStats* stats)
    : stats_(stats),
      scope_(&tracker_),
      counter_sink_(&counters_),
      start_seconds_(NowSeconds()) {
  (void)oracle;  // kept in the signature: a scope is always tied to one index
}

void SolverScope::Finish() {
  IFLS_CHECK(!finished_) << "SolverScope::Finish called twice";
  finished_ = true;
  stats_->elapsed_seconds = NowSeconds() - start_seconds_;
  stats_->peak_memory_bytes =
      std::max<std::int64_t>(stats_->peak_memory_bytes, tracker_.peak_bytes());
  stats_->door_distance_evals += counters_.door_distance_evals;
  stats_->matrix_lookups += counters_.matrix_lookups;
  stats_->cache_hits += counters_.cache_hits;
  stats_->cache_misses += counters_.cache_misses;
  stats_->kernel_invocations += counters_.kernel_invocations;
  stats_->dijkstra_fallbacks += counters_.dijkstra_fallbacks;
}

SolverScope::~SolverScope() {
  if (!finished_) Finish();
}

double NearestExistingDistance(const IflsContext& ctx, const Client& c) {
  double best = kInfDistance;
  for (PartitionId e : ctx.existing) {
    const double d = ctx.oracle->PointToPartition(c.position, c.partition, e);
    if (d < best) best = d;
  }
  return best;
}

double EvaluateMinMax(const IflsContext& ctx, PartitionId n) {
  double worst = 0.0;
  for (const Client& c : ctx.clients) {
    const double nef = NearestExistingDistance(ctx, c);
    const double dn = ctx.oracle->PointToPartition(c.position, c.partition, n);
    worst = std::max(worst, std::min(nef, dn));
  }
  return worst;
}

double NoFacilityMinMax(const IflsContext& ctx) {
  double worst = 0.0;
  for (const Client& c : ctx.clients) {
    worst = std::max(worst, NearestExistingDistance(ctx, c));
  }
  return worst;
}

double EvaluateMinDist(const IflsContext& ctx, PartitionId n) {
  double total = 0.0;
  for (const Client& c : ctx.clients) {
    const double nef = NearestExistingDistance(ctx, c);
    const double dn = ctx.oracle->PointToPartition(c.position, c.partition, n);
    total += std::min(nef, dn);
  }
  return total;
}

double NoFacilityMinDist(const IflsContext& ctx) {
  double total = 0.0;
  for (const Client& c : ctx.clients) {
    total += NearestExistingDistance(ctx, c);
  }
  return total;
}

double EvaluateMaxSum(const IflsContext& ctx, PartitionId n) {
  std::int64_t count = 0;
  for (const Client& c : ctx.clients) {
    const double nef = NearestExistingDistance(ctx, c);
    const double dn = ctx.oracle->PointToPartition(c.position, c.partition, n);
    if (dn < nef) ++count;
  }
  return static_cast<double>(count);
}

}  // namespace ifls
