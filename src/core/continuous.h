#ifndef IFLS_CORE_CONTINUOUS_H_
#define IFLS_CORE_CONTINUOUS_H_

#include <map>
#include <set>
#include <vector>

#include "src/core/efficient.h"
#include "src/core/query.h"

namespace ifls {

/// Continuous IFLS over a *moving* client crowd — the paper's §8 future
/// work. The monitor owns the client set, accepts position updates and
/// keeps the MinMax answer fresh:
///
///  * `Answer()` is always exact: it re-solves (single-pass efficient
///    algorithm) whenever any update occurred since the last solve.
///  * `AnswerWithin(tolerance)` may keep the cached answer: the monitor
///    maintains, per client, the exact distance certificate to the cached
///    answer, min(NEF(c), iDist(c, A)), and the *every-candidate-open*
///    floor, min(NEF(c), iDist(c, NN(c, Fn))). The maximum floor L lower-
///    bounds any candidate's objective, so whenever
///        f(A) = max certificate <= (1 + tolerance) * L
///    the cached answer is provably within `tolerance` of optimal and no
///    re-solve is needed. Updates cost two NN searches plus one distance
///    evaluation each; a skip costs O(1).
///
/// Facility sets are dynamic too (the service's standing queries feed
/// DeltaOverlay mutations through): Add/Remove of existing facilities and
/// candidates maintain the per-client bounds incrementally — an add is one
/// exact distance evaluation per client, a removal re-searches only the
/// clients whose nearest facility was the removed one. Facility sets are
/// kept sorted ascending so every re-solve sees the same canonical
/// (snapshot ⊕ overlay) composition the service solves over, keeping
/// answers bit-identical to from-scratch solves.
class ContinuousIfls {
 public:
  struct Options {
    EfficientOptions solver;
  };

  /// Per-call outcome of AnswerWithin.
  struct MonitorAnswer {
    IflsResult result;
    /// True when this call ran a full solve; false when the cached answer
    /// was certified fresh (result.objective then holds the *current* exact
    /// objective of the cached answer).
    bool refreshed = false;
  };

  /// The oracle must outlive the monitor. The facility sets are sorted
  /// into canonical ascending order.
  ContinuousIfls(const DistanceOracle* oracle,
                 std::vector<PartitionId> existing,
                 std::vector<PartitionId> candidates, Options options = {});

  // ---- Crowd updates ----------------------------------------------------

  /// Adds a client; returns its id. The position must lie inside the
  /// partition (IFLS_CHECKed).
  ClientId AddClient(const Point& position, PartitionId partition);

  Status RemoveClient(ClientId id);

  /// Moves a client to a new position/partition.
  Status MoveClient(ClientId id, const Point& position,
                    PartitionId partition);

  std::size_t num_clients() const { return clients_.size(); }

  // ---- Facility updates -------------------------------------------------

  /// Opens an existing facility at partition `p`. Every client's NEF can
  /// only shrink: one exact distance evaluation per client, no search.
  Status AddExistingFacility(PartitionId p);

  /// Closes the existing facility at `p`. Only clients whose nearest
  /// existing facility was `p` re-search; everyone else is untouched.
  Status RemoveExistingFacility(PartitionId p);

  /// Adds a candidate location. Floors can only shrink (one evaluation per
  /// client); the cached answer keeps its objective but may stop being
  /// optimal, so the monitor goes dirty and the certified bound decides
  /// whether a re-solve is actually needed.
  Status AddCandidateFacility(PartitionId p);

  /// Removes a candidate location. Removing a non-answer candidate cannot
  /// displace the cached answer (the optimum over a shrunk set can only
  /// rise, and the answer still achieves its objective), so the cache stays
  /// clean; removing the answer itself drops the cache.
  Status RemoveCandidateFacility(PartitionId p);

  const std::vector<PartitionId>& existing() const { return existing_; }
  const std::vector<PartitionId>& candidates() const { return candidates_; }

  // ---- Answers ------------------------------------------------------------

  /// Exact current answer; re-solves when dirty.
  Result<IflsResult> Answer();

  /// Possibly cached answer, guaranteed within `tolerance` (relative) of
  /// the optimal objective. tolerance = 0 forces exactness (still skips
  /// when the cached answer provably remains optimal).
  Result<MonitorAnswer> AnswerWithin(double tolerance);

  // ---- Introspection -------------------------------------------------------

  /// Full solves performed so far.
  std::int64_t solve_count() const { return solve_count_; }
  /// AnswerWithin calls served from the certified cache.
  std::int64_t skip_count() const { return skip_count_; }

  /// True while a cached *found* answer is held (the skip fast-path's
  /// precondition).
  bool has_cached_answer() const { return has_cached_ && cached_.found; }

  /// The cached answer partition; kInvalidPartition without one.
  PartitionId cached_answer() const {
    return has_cached_answer() ? cached_.answer : kInvalidPartition;
  }

  /// Exact current objective of the cached answer, f(A) = max certificate.
  /// Only meaningful while has_cached_answer(); 0 with no clients.
  double certified_objective() const {
    return clients_.empty() ? 0.0 : *certificates_.rbegin();
  }

  /// The certified lower bound L = max floor: no candidate (current sets,
  /// current crowd) can achieve an objective below it. 0 with no clients.
  double certified_lower_bound() const {
    return clients_.empty() ? 0.0 : *floors_.rbegin();
  }

 private:
  struct ClientRecord {
    Client client;
    /// Exact nearest-existing-facility distance and its facility.
    double nef = 0.0;
    PartitionId nef_facility = kInvalidPartition;
    /// Exact nearest-candidate distance and its candidate.
    double nc = 0.0;
    PartitionId nc_facility = kInvalidPartition;
    /// Exact distance to the cached answer (kInfDistance when none).
    double answer_dist = 0.0;
    /// min(nef, nc): this client's contribution floor when every candidate
    /// is open.
    double floor = 0.0;
    /// min(nef, answer_dist); only meaningful while an answer is cached.
    double certificate = 0.0;
  };

  /// Recomputes nef/nc for one record (two NN searches).
  void RefreshStaticBounds(ClientRecord* record);
  /// Recomputes the record's answer distance against the cached answer.
  void RefreshCertificate(ClientRecord* record);
  /// Rederives floor and certificate from the stored components.
  void RecomputeDerived(ClientRecord* record);
  void InsertBounds(const ClientRecord& record);
  void EraseBounds(const ClientRecord& record);

  void RebuildExistingIndex();
  void RebuildCandidateIndex();

  Result<IflsResult> Resolve();

  const DistanceOracle* oracle_;
  std::vector<PartitionId> existing_;
  std::vector<PartitionId> candidates_;
  Options options_;
  FacilityIndex existing_index_;
  FacilityIndex candidate_index_;

  std::map<ClientId, ClientRecord> clients_;
  ClientId next_id_ = 0;
  /// Multisets over all clients for O(log n) max maintenance.
  std::multiset<double> certificates_;
  std::multiset<double> floors_;

  bool dirty_ = true;
  bool has_cached_ = false;
  IflsResult cached_;
  std::int64_t solve_count_ = 0;
  std::int64_t skip_count_ = 0;
};

}  // namespace ifls

#endif  // IFLS_CORE_CONTINUOUS_H_
