#ifndef IFLS_CORE_CONTINUOUS_H_
#define IFLS_CORE_CONTINUOUS_H_

#include <map>
#include <set>

#include "src/core/efficient.h"
#include "src/core/query.h"

namespace ifls {

/// Continuous IFLS over a *moving* client crowd — the paper's §8 future
/// work. The monitor owns the client set, accepts position updates and
/// keeps the MinMax answer fresh:
///
///  * `Answer()` is always exact: it re-solves (single-pass efficient
///    algorithm) whenever any update occurred since the last solve.
///  * `AnswerWithin(tolerance)` may keep the cached answer: the monitor
///    maintains, per client, the exact distance certificate to the cached
///    answer, min(NEF(c), iDist(c, A)), and the *every-candidate-open*
///    floor, min(NEF(c), iDist(c, NN(c, Fn))). The maximum floor L lower-
///    bounds any candidate's objective, so whenever
///        f(A) = max certificate <= (1 + tolerance) * L
///    the cached answer is provably within `tolerance` of optimal and no
///    re-solve is needed. Updates cost two NN searches plus one distance
///    evaluation each; a skip costs O(1).
///
/// Facilities are fixed for the monitor's lifetime (facility updates are a
/// different maintenance problem); clients are dynamic.
class ContinuousIfls {
 public:
  struct Options {
    EfficientOptions solver;
  };

  /// Per-call outcome of AnswerWithin.
  struct MonitorAnswer {
    IflsResult result;
    /// True when this call ran a full solve; false when the cached answer
    /// was certified fresh (result.objective then holds the *current* exact
    /// objective of the cached answer).
    bool refreshed = false;
  };

  /// The oracle must outlive the monitor.
  ContinuousIfls(const DistanceOracle* oracle,
                 std::vector<PartitionId> existing,
                 std::vector<PartitionId> candidates, Options options = {});

  // ---- Crowd updates ----------------------------------------------------

  /// Adds a client; returns its id. The position must lie inside the
  /// partition (IFLS_CHECKed).
  ClientId AddClient(const Point& position, PartitionId partition);

  Status RemoveClient(ClientId id);

  /// Moves a client to a new position/partition.
  Status MoveClient(ClientId id, const Point& position,
                    PartitionId partition);

  std::size_t num_clients() const { return clients_.size(); }

  // ---- Answers ------------------------------------------------------------

  /// Exact current answer; re-solves when dirty.
  Result<IflsResult> Answer();

  /// Possibly cached answer, guaranteed within `tolerance` (relative) of
  /// the optimal objective. tolerance = 0 forces exactness (still skips
  /// when the cached answer provably remains optimal).
  Result<MonitorAnswer> AnswerWithin(double tolerance);

  // ---- Introspection -------------------------------------------------------

  /// Full solves performed so far.
  std::int64_t solve_count() const { return solve_count_; }
  /// AnswerWithin calls served from the certified cache.
  std::int64_t skip_count() const { return skip_count_; }

 private:
  struct ClientRecord {
    Client client;
    /// Exact nearest-existing-facility distance.
    double nef = 0.0;
    /// min(nef, distance to the nearest candidate): this client's
    /// contribution floor when every candidate is open.
    double floor = 0.0;
    /// min(nef, distance to the cached answer); only meaningful while an
    /// answer is cached.
    double certificate = 0.0;
  };

  /// Recomputes nef/floor for one record (two NN searches).
  void RefreshStaticBounds(ClientRecord* record);
  /// Recomputes the record's certificate against the cached answer.
  void RefreshCertificate(ClientRecord* record);
  void InsertBounds(const ClientRecord& record);
  void EraseBounds(const ClientRecord& record);

  Result<IflsResult> Resolve();

  const DistanceOracle* oracle_;
  std::vector<PartitionId> existing_;
  std::vector<PartitionId> candidates_;
  Options options_;
  FacilityIndex existing_index_;
  FacilityIndex candidate_index_;

  std::map<ClientId, ClientRecord> clients_;
  ClientId next_id_ = 0;
  /// Multisets over all clients for O(log n) max maintenance.
  std::multiset<double> certificates_;
  std::multiset<double> floors_;

  bool dirty_ = true;
  bool has_cached_ = false;
  IflsResult cached_;
  std::int64_t solve_count_ = 0;
  std::int64_t skip_count_ = 0;
};

}  // namespace ifls

#endif  // IFLS_CORE_CONTINUOUS_H_
