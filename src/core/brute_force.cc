#include "src/core/brute_force.h"

#include <algorithm>
#include <vector>

#include "src/common/logging.h"

namespace ifls {
namespace {

/// Shared skeleton: precompute per-client NEF once, then fold every
/// candidate through `better`/`accumulate` policies.
struct NefTable {
  std::vector<double> nef;  // per client
};

NefTable ComputeNefTable(const IflsContext& ctx, QueryStats* stats) {
  NefTable table;
  table.nef.reserve(ctx.clients.size());
  for (const Client& c : ctx.clients) {
    double best = kInfDistance;
    for (PartitionId e : ctx.existing) {
      const double d = ctx.oracle->PointToPartition(c.position, c.partition, e);
      ++stats->distance_computations;
      if (d < best) best = d;
    }
    table.nef.push_back(best);
  }
  return table;
}

}  // namespace

Result<IflsResult> SolveBruteForceMinMax(const IflsContext& ctx) {
  IFLS_RETURN_NOT_OK(ValidateContext(ctx));
  IflsResult result;
  SolverScope scope(*ctx.oracle, &result.stats);

  const NefTable table = ComputeNefTable(ctx, &result.stats);
  const double f0 = table.nef.empty()
                        ? 0.0
                        : *std::max_element(table.nef.begin(), table.nef.end());

  double best_obj = kInfDistance;
  PartitionId best = kInvalidPartition;
  for (PartitionId n : ctx.candidates) {
    double worst = 0.0;
    for (std::size_t i = 0; i < ctx.clients.size(); ++i) {
      const Client& c = ctx.clients[i];
      const double dn =
          ctx.oracle->PointToPartition(c.position, c.partition, n);
      ++result.stats.distance_computations;
      worst = std::max(worst, std::min(table.nef[i], dn));
      if (worst >= best_obj) break;  // cannot beat the incumbent
    }
    if (worst < best_obj) {
      best_obj = worst;
      best = n;
    }
  }
  if (best == kInvalidPartition) {
    result.found = false;
    result.objective = f0;
  } else {
    result.found = true;
    result.answer = best;
    result.objective = best_obj;
  }
  scope.Finish();
  return result;
}

Result<IflsResult> SolveBruteForceTopKMinMax(const IflsContext& ctx, int k) {
  if (k < 1) return Status::InvalidArgument("k must be positive");
  IFLS_RETURN_NOT_OK(ValidateContext(ctx));
  IflsResult result;
  SolverScope scope(*ctx.oracle, &result.stats);

  const NefTable table = ComputeNefTable(ctx, &result.stats);
  std::vector<std::pair<PartitionId, double>> scored;
  scored.reserve(ctx.candidates.size());
  // Incumbent = k-th best objective so far; candidates whose running max
  // passes it are provably outside the top k.
  double incumbent = kInfDistance;
  for (PartitionId n : ctx.candidates) {
    double worst = 0.0;
    bool alive = true;
    for (std::size_t i = 0; i < ctx.clients.size(); ++i) {
      const Client& c = ctx.clients[i];
      const double dn =
          ctx.oracle->PointToPartition(c.position, c.partition, n);
      ++result.stats.distance_computations;
      worst = std::max(worst, std::min(table.nef[i], dn));
      if (worst >= incumbent) {
        alive = false;
        break;
      }
    }
    if (!alive) continue;
    scored.emplace_back(n, worst);
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.second < b.second; });
    if (scored.size() > static_cast<std::size_t>(k)) scored.pop_back();
    if (scored.size() == static_cast<std::size_t>(k)) {
      incumbent = scored.back().second;
    }
  }
  result.ranked = std::move(scored);
  if (!result.ranked.empty()) {
    result.found = true;
    result.answer = result.ranked.front().first;
    result.objective = result.ranked.front().second;
  }
  scope.Finish();
  return result;
}

Result<IflsResult> SolveBruteForceMinDist(const IflsContext& ctx) {
  IFLS_RETURN_NOT_OK(ValidateContext(ctx));
  IflsResult result;
  SolverScope scope(*ctx.oracle, &result.stats);

  const NefTable table = ComputeNefTable(ctx, &result.stats);
  double best_obj = kInfDistance;
  PartitionId best = kInvalidPartition;
  for (PartitionId n : ctx.candidates) {
    double total = 0.0;
    for (std::size_t i = 0; i < ctx.clients.size(); ++i) {
      const Client& c = ctx.clients[i];
      const double dn =
          ctx.oracle->PointToPartition(c.position, c.partition, n);
      ++result.stats.distance_computations;
      total += std::min(table.nef[i], dn);
      if (total >= best_obj) break;
    }
    if (total < best_obj) {
      best_obj = total;
      best = n;
    }
  }
  if (best == kInvalidPartition) {
    double f0 = 0.0;
    for (double nef : table.nef) f0 += nef;
    result.found = false;
    result.objective = f0;
  } else {
    result.found = true;
    result.answer = best;
    result.objective = best_obj;
  }
  scope.Finish();
  return result;
}

Result<IflsResult> SolveBruteForceMaxSum(const IflsContext& ctx) {
  IFLS_RETURN_NOT_OK(ValidateContext(ctx));
  IflsResult result;
  SolverScope scope(*ctx.oracle, &result.stats);

  const NefTable table = ComputeNefTable(ctx, &result.stats);
  double best_obj = -1.0;
  PartitionId best = kInvalidPartition;
  for (PartitionId n : ctx.candidates) {
    std::int64_t count = 0;
    for (std::size_t i = 0; i < ctx.clients.size(); ++i) {
      const Client& c = ctx.clients[i];
      const double dn =
          ctx.oracle->PointToPartition(c.position, c.partition, n);
      ++result.stats.distance_computations;
      if (dn < table.nef[i]) ++count;
    }
    if (static_cast<double>(count) > best_obj) {
      best_obj = static_cast<double>(count);
      best = n;
    }
  }
  if (best == kInvalidPartition) {
    result.found = false;
    result.objective = 0.0;
  } else {
    result.found = true;
    result.answer = best;
    result.objective = best_obj;
  }
  scope.Finish();
  return result;
}

}  // namespace ifls
