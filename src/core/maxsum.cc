#include "src/core/maxsum.h"

#include <vector>

#include "src/common/trace.h"
#include "src/core/extension_engine.h"

namespace ifls {
namespace {

/// Per-candidate aggregate for MaxSum:
///   count(n) = cnt_alive + pruned_cnt          [certain part]
///   UB(n)    = count(n) + (alive - k_alive)    [unretrieved alive clients
///                                               might still be won over]
/// A pruned client counts for n iff its retrieved distance is strictly
/// below its NEF; unretrieved candidates are provably >= NEF, so they never
/// count — the aggregate is exact for pruned clients.
class MaxSumPolicy {
 public:
  void Init(std::size_t num_candidates) {
    cnt_alive_.assign(num_candidates, 0);
    k_alive_.assign(num_candidates, 0);
    pruned_cnt_.assign(num_candidates, 0);
  }

  void OnCandidateEvent(std::size_t ord, double dist) {
    (void)dist;  // alive client: dist <= d_low < NEF, so it always counts
    ++cnt_alive_[ord];
    ++k_alive_[ord];
  }

  void OnPrune(double nef, const internal::RetrievedMap& retrieved,
               double d_low,
               const std::vector<std::int32_t>& ordinal_of_partition) {
    for (const auto& [facility, dist] : retrieved) {
      const auto ord = static_cast<std::size_t>(
          ordinal_of_partition[static_cast<std::size_t>(facility)]);
      if (dist <= d_low) {
        // Previously counted while alive; move to the pruned tally with the
        // strict comparison against the now-known NEF.
        --cnt_alive_[ord];
        --k_alive_[ord];
      }
      if (dist < nef) ++pruned_cnt_[ord];
    }
  }

  std::int32_t TryDecide(std::int64_t alive, double gd,
                         double* objective) const {
    (void)gd;
    std::int32_t best = -1;
    std::int64_t best_bound = -1;
    bool best_exact = false;
    for (std::size_t i = 0; i < cnt_alive_.size(); ++i) {
      const std::int64_t missing = alive - k_alive_[i];
      const bool exact = missing == 0;
      const std::int64_t bound = cnt_alive_[i] + pruned_cnt_[i] + missing;
      if (bound > best_bound || (bound == best_bound && exact && !best_exact)) {
        best_bound = bound;
        best = static_cast<std::int32_t>(i);
        best_exact = exact;
      }
    }
    if (best < 0 || !best_exact) return -1;
    *objective = static_cast<double>(best_bound);
    return best;
  }

 private:
  std::vector<std::int64_t> cnt_alive_;
  std::vector<std::int64_t> k_alive_;
  std::vector<std::int64_t> pruned_cnt_;
};

}  // namespace

Result<IflsResult> SolveMaxSum(const IflsContext& ctx,
                               const MaxSumOptions& options) {
  IFLS_RETURN_NOT_OK(ValidateContext(ctx));
  IflsResult result;
  SolverScope scope(*ctx.oracle, &result.stats);
  TraceSpan span(TraceCategory::kSolver, "maxsum");
  internal::IncrementalObjectiveSolver<MaxSumPolicy> solver(
      ctx, options.group_clients, &result);
  solver.Run();
  scope.Finish();
  return result;
}

}  // namespace ifls
