#ifndef IFLS_CORE_MINMAX_BASELINE_H_
#define IFLS_CORE_MINMAX_BASELINE_H_

#include "src/core/query.h"

namespace ifls {

/// Tuning knobs for the baseline (defaults reproduce the paper's setup).
struct MinMaxBaselineOptions {
  /// Reuse a caller-provided Fe facility index ("indexed once offline",
  /// paper §4). When null the solver builds one itself inside the timed
  /// region.
  const FacilityIndex* offline_existing_index = nullptr;
};

/// The paper's baseline (Algorithm 1): the MinMax road-network algorithm of
/// Chen et al. (SIGMOD'14) modified for indoor venues. Per client it finds
/// the nearest existing facility via VIP-tree NN search, sorts clients by
/// that distance descending, generates the candidate answer set from the
/// worst-off client, and refines it per client with the paper's pruning
/// rules 3(a)/3(b) until at most one candidate survives or all clients are
/// considered.
///
/// Contract: when `found`, `answer` minimizes the MinMax objective over Fn
/// and `objective` equals max(considered-client distance, next unconsidered
/// client's NEF) — an upper bound that is tight except when refinement
/// terminates early with |CA| == 1 (tests certify answers by re-evaluating
/// with EvaluateMinMax). found == false means Fn is empty or no candidate
/// improves the worst-off client.
Result<IflsResult> SolveModifiedMinMax(const IflsContext& ctx,
                                       const MinMaxBaselineOptions& options = {});

}  // namespace ifls

#endif  // IFLS_CORE_MINMAX_BASELINE_H_
