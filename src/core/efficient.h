#ifndef IFLS_CORE_EFFICIENT_H_
#define IFLS_CORE_EFFICIENT_H_

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "src/core/query.h"

namespace ifls {

/// Tuning knobs for the efficient approach. Defaults reproduce the paper;
/// the toggles exist for the ablation benchmarks.
struct EfficientOptions {
  /// Group clients by partition (paper §5: the priority queue holds
  /// partitions, not clients). When false every client becomes its own
  /// group, reproducing the ungrouped traversal for the ablation.
  bool group_clients = true;
  /// Prune clients per Lemma 5.1. When false clients stay alive until a
  /// common candidate covers them all.
  bool prune_clients = true;
  /// Skip subtrees / partitions that contain no facility (object-layer
  /// counts). The paper's pseudocode enqueues all children; skipping
  /// facility-free ones is behaviour-preserving and is what the VIP-tree NN
  /// machinery does as well.
  bool skip_empty_subtrees = true;
  /// Share distance work across the clients of a group (the generalization
  /// of the paper's §5.3.1 Case 1): per (group, facility), door-to-facility
  /// base distances are computed once and every client adds only its local
  /// point-to-door legs. Exactly equivalent to per-client computation;
  /// kills the per-client door-to-door compositions entirely.
  bool reuse_group_distances = true;
  /// Return the k best candidates (ascending exact objective) in
  /// IflsResult::ranked instead of just the argmin. The single pass simply
  /// keeps running after the first common candidate until the k-th best
  /// collected objective drops below d_low — an extension beyond the paper
  /// (several related works return k optimal locations).
  int top_k = 1;
};

/// The paper's efficient approach (Algorithms 2 + 3): a single bottom-up
/// best-first traversal of the VIP-tree over Fe ∪ Fn that incrementally
/// retrieves the nearest facilities of *all* clients at once, prunes clients
/// via Lemma 5.1 as the global distance Gd grows, and raises the answer
/// bound d_low through retrieved-facility distances until a candidate is
/// common to every surviving client.
///
/// Contract: when `found`, `answer` minimizes the MinMax objective over Fn
/// (ties among candidates that become common at the same d_low step are
/// broken exactly, computing the pruned clients' distances). `objective` is
/// max(answer's max distance to surviving clients, pruned-client NEF floor):
/// an upper bound on the true objective that is tight unless the floor
/// client would itself be improved by the answer; tests certify answers with
/// EvaluateMinMax. found == false means no candidate improves the objective
/// (all clients pruned) or Fn is empty.
Result<IflsResult> SolveEfficient(const IflsContext& ctx,
                                  const EfficientOptions& options = {});

/// A lazily continued ranked MinMax search: "give me the next m candidates"
/// without re-solving or deciding k up front. The stream keeps the
/// single-pass traversal of SolveEfficient alive between pages and resumes
/// it on demand; the concatenation of all pages is bit-identical to
/// IflsResult::ranked of a one-shot SolveEfficient with top_k = |Fn| over
/// the same context.
///
/// Emission rule (why a page is final): every collected candidate's exact
/// objective is <= the d_low at its collection, and every not-yet-collected
/// candidate's objective is >= the current global distance Gd. A collected
/// entry is therefore *certified* — no later discovery can precede it —
/// exactly when its objective is strictly below Gd (or the traversal is
/// exhausted). Next(m) resumes until m more entries are certified. Ties are
/// deterministic: equal objectives rank by ascending partition id.
///
/// The oracle behind the context must outlive the stream (the facility sets
/// and clients are copied). Not thread-safe; callers serialize Next().
class RankedStream {
 public:
  struct Page {
    /// (candidate partition, exact objective), ranking order.
    std::vector<std::pair<PartitionId, double>> items;
    /// True once the full ranking has been emitted; further Next() calls
    /// return empty pages.
    bool exhausted = false;
  };

  /// Validates the context and runs the solver's setup phase (no traversal
  /// work beyond distance-zero events).
  static Result<std::unique_ptr<RankedStream>> Open(
      const IflsContext& ctx, const EfficientOptions& options = {});

  ~RankedStream();
  RankedStream(const RankedStream&) = delete;
  RankedStream& operator=(const RankedStream&) = delete;

  /// Returns the next (up to) m entries of the ranking. m == 0 is a no-op
  /// probe: empty page, exhaustion flag only.
  Page Next(std::size_t m);

  bool exhausted() const;
  /// Entries emitted so far across all pages.
  std::size_t emitted() const;
  /// Size of the full ranking (|Fn|).
  std::size_t total_candidates() const;
  /// Cumulative solver work across Open and every Next call.
  const QueryStats& stats() const;

 private:
  struct Impl;
  explicit RankedStream(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace ifls

#endif  // IFLS_CORE_EFFICIENT_H_
