#include "src/core/solve_dispatch.h"

namespace ifls {

const char* IflsObjectiveName(IflsObjective objective) {
  switch (objective) {
    case IflsObjective::kMinMax:
      return "MinMax";
    case IflsObjective::kMinDist:
      return "MinDist";
    case IflsObjective::kMaxSum:
      return "MaxSum";
  }
  return "unknown";
}

Result<IflsResult> SolveWithObjective(IflsObjective objective,
                                      const IflsContext& ctx,
                                      const SolverOptionSet& options) {
  switch (objective) {
    case IflsObjective::kMinMax:
      return SolveEfficient(ctx, options.minmax);
    case IflsObjective::kMinDist:
      return SolveMinDist(ctx, options.mindist);
    case IflsObjective::kMaxSum:
      return SolveMaxSum(ctx, options.maxsum);
  }
  return Status::Internal("unknown objective");
}

Result<std::unique_ptr<RankedStream>> OpenRankedStream(
    IflsObjective objective, const IflsContext& ctx,
    const SolverOptionSet& options) {
  if (objective != IflsObjective::kMinMax) {
    return Status::InvalidArgument(
        std::string("no ranked stream for objective ") +
        IflsObjectiveName(objective));
  }
  return RankedStream::Open(ctx, options.minmax);
}

}  // namespace ifls
