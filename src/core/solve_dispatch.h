#ifndef IFLS_CORE_SOLVE_DISPATCH_H_
#define IFLS_CORE_SOLVE_DISPATCH_H_

#include <cstdint>

#include "src/core/efficient.h"
#include "src/core/maxsum.h"
#include "src/core/mindist.h"
#include "src/core/query.h"

namespace ifls {

/// Which IFLS objective a query optimizes (paper §4 / §7).
enum class IflsObjective : std::uint8_t { kMinMax, kMinDist, kMaxSum };

/// "MinMax" / "MinDist" / "MaxSum".
const char* IflsObjectiveName(IflsObjective objective);

/// One option struct per objective, so every execution front (batch engine,
/// online service, CLI) configures the solvers identically.
struct SolverOptionSet {
  EfficientOptions minmax;
  MinDistOptions mindist;
  MaxSumOptions maxsum;
};

/// Runs the matching efficient solver on `ctx`: the single
/// objective-dispatch point shared by the batch engine and the online
/// service, so both fronts produce bit-identical results for the same
/// context and options.
Result<IflsResult> SolveWithObjective(IflsObjective objective,
                                      const IflsContext& ctx,
                                      const SolverOptionSet& options = {});

/// Lazy-continuation counterpart of SolveWithObjective: opens a RankedStream
/// over `ctx` for objectives that define a full ranking. Only MinMax streams
/// today (the paper's ranked extension); other objectives return
/// InvalidArgument so service callers fail fast instead of silently
/// re-solving per page.
Result<std::unique_ptr<RankedStream>> OpenRankedStream(
    IflsObjective objective, const IflsContext& ctx,
    const SolverOptionSet& options = {});

}  // namespace ifls

#endif  // IFLS_CORE_SOLVE_DISPATCH_H_
