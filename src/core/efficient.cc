#include "src/core/efficient.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/common/memory_tracker.h"
#include "src/common/trace.h"
#include "src/index/minplus_kernels.h"

namespace ifls {
namespace {

template <typename T>
using TrackedVector = std::vector<T, TrackingAllocator<T>>;

using CandidateMap =
    std::unordered_map<PartitionId, double, std::hash<PartitionId>,
                       std::equal_to<PartitionId>,
                       TrackingAllocator<std::pair<const PartitionId, double>>>;

using VisitedSet =
    std::unordered_set<std::int64_t, std::hash<std::int64_t>,
                       std::equal_to<std::int64_t>,
                       TrackingAllocator<std::int64_t>>;

/// A group of clients sharing one partition (or a singleton when grouping is
/// disabled). The traversal enqueues one entry stream per group.
struct Group {
  PartitionId partition = kInvalidPartition;
  TrackedVector<std::uint32_t> clients;
  std::int32_t alive = 0;
  VisitedSet visited;
};

/// Priority-queue entry of the bottom-up traversal: (group's partition,
/// indoor entity I, iMinD) — paper Algorithm 3.
struct TraversalEntry {
  double key = 0.0;
  std::uint32_t group = 0;
  std::int32_t entity = -1;  // NodeId, or PartitionId when is_partition
  bool is_partition = false;
  bool operator>(const TraversalEntry& other) const {
    return key > other.key;
  }
};

/// A retrieved (client, facility, distance) triple, processed in ascending
/// distance order once the global distance Gd passes it. Existing-facility
/// events prune their client (Lemma 5.1); candidate events raise coverage.
struct FacilityEvent {
  double dist = 0.0;
  std::uint32_t client = 0;
  PartitionId facility = kInvalidPartition;
  bool existing = false;
  // Candidate events sort before existing events at equal distance so a
  // prune's coverage rollback (entries with dist <= d_low) matches exactly
  // the set of already-processed events.
  bool operator>(const FacilityEvent& other) const {
    if (dist != other.dist) return dist > other.dist;
    return existing && !other.existing;
  }
};

struct ClientState {
  /// Counts toward answer detection (not yet covered by Lemma 5.1).
  bool alive = true;
  /// Still receives distance computations. With pruning enabled this flips
  /// together with `alive`; the no-pruning ablation keeps clients active so
  /// the answer stays correct while the saved work is measured.
  bool active = true;
  double best_existing = kInfDistance;
  double best_any = kInfDistance;
  std::uint32_t group = 0;
  CandidateMap candidates;
};

std::int64_t EncodeEntity(std::int32_t entity, bool is_partition) {
  return is_partition ? (static_cast<std::int64_t>(1) << 32) + entity
                      : entity;
}

class EfficientSolver {
 public:
  /// `streaming == true` puts the solver under external pacing (RankedStream):
  /// every candidate is collected with its exact objective (top_k is ignored,
  /// nothing truncates) and Advance() can pause the traversal between pages.
  EfficientSolver(const IflsContext& ctx, const EfficientOptions& options,
                  IflsResult* result, bool streaming = false)
      : ctx_(ctx),
        options_(options),
        oracle_(*ctx.oracle),
        venue_(ctx.venue()),
        result_(result),
        stats_(result->stats),
        index_(ctx.oracle, ctx.existing),
        streaming_(streaming) {}

  void Run() {
    TraceSpan run_span(TraceCategory::kSolver, "efficient");
    Setup();
    if (!done_) Advance(0);
  }

  void Setup() {
    TraceSpan setup_span(TraceCategory::kSolver, "efficient/setup");
    index_.AddCandidates(ctx_.candidates);
    candidate_ordinal_.assign(venue_.num_partitions(), -1);
    for (std::size_t i = 0; i < ctx_.candidates.size(); ++i) {
      candidate_ordinal_[static_cast<std::size_t>(ctx_.candidates[i])] =
          static_cast<std::int32_t>(i);
    }
    coverage_.assign(ctx_.candidates.size(), 0);

    candidate_collected_.assign(ctx_.candidates.size(), 0);

    InitClients();
    if (alive_count_ == 0) {
      FinishNoAnswer();
      return;
    }
    // Paper Algorithm 2 lines 1-10: clients located inside facilities are
    // served (and possibly pruned) before the traversal starts.
    ProcessEvents(0.0);
    if (done_) return;

    BuildGroups();
    SeedQueue();
  }

  /// Paper Algorithm 3 main loop. In streaming mode the loop pauses (and can
  /// be resumed by calling Advance again) once `target_certified` collected
  /// candidates are certified final; the pause point is a loop head, where
  /// all events with distance <= Gd have been drained.
  void Advance(std::size_t target_certified) {
    TraceSpan traversal_span(TraceCategory::kSolver, "efficient/traversal");
    while (!done_ && !queue_.empty()) {
      if (streaming_ && CertifiedCount() >= target_certified) return;
      const TraversalEntry top = queue_.top();
      queue_.pop();
      ++stats_.queue_pops;
      gd_ = top.key;
      Group& group = groups_[top.group];
      if (group.alive > 0) {
        if (top.is_partition) {
          // Non-facility partitions can be dequeued when subtree skipping is
          // disabled (paper line 19 enqueues every child); they carry no
          // work (paper line 10 guards on "I is a facility").
          if (index_.IsFacility(top.entity)) {
            AddFacilityToGroup(group, top.entity);
          }
        } else {
          ExpandNode(top.group, top.entity);
        }
      }
      UpdateIsFirst();
      ProcessEvents(gd_);
    }
    if (!done_) {
      // Queue exhausted: every facility has been retrieved for every
      // surviving client. Flush the remaining events.
      gd_ = kInfDistance;
      ProcessEvents(kInfDistance);
    }
    if (!done_) FinishNoAnswer();
  }

  bool done() const { return done_; }

  /// Streaming: collected candidates whose rank can no longer change. A
  /// collected objective is exact and <= d_low at collection; an uncollected
  /// candidate still has an alive client whose distance to it is >= Gd, so
  /// its objective is >= Gd. Strictly-below-Gd entries are therefore final
  /// (boundary ties at == Gd are not, and stay uncertified until Gd moves).
  std::size_t CertifiedCount() const {
    if (done_) return collected_.size();
    std::size_t certified = 0;
    for (const auto& entry : collected_) {
      if (entry.second < gd_) ++certified;
    }
    return certified;
  }

  /// Streaming: the collection log (sorted by FinishRanked once done).
  const std::vector<std::pair<PartitionId, double>>& collected() const {
    return collected_;
  }

 private:
  // ---- Setup -----------------------------------------------------------

  void InitClients() {
    clients_.resize(ctx_.clients.size());
    pending_first_.reserve(ctx_.clients.size());
    for (std::size_t i = 0; i < ctx_.clients.size(); ++i) {
      pending_first_.push_back(static_cast<std::uint32_t>(i));
    }
    alive_count_ = static_cast<std::int64_t>(ctx_.clients.size());
    for (std::size_t i = 0; i < ctx_.clients.size(); ++i) {
      const Client& c = ctx_.clients[i];
      if (index_.IsFacility(c.partition)) {
        RecordRetrieval(static_cast<std::uint32_t>(i), c.partition, 0.0);
      }
    }
  }

  void BuildGroups() {
    if (options_.group_clients) {
      std::unordered_map<PartitionId, std::uint32_t> group_of_partition;
      for (std::size_t i = 0; i < ctx_.clients.size(); ++i) {
        if (!clients_[i].active) continue;
        const PartitionId p = ctx_.clients[i].partition;
        auto [it, inserted] = group_of_partition.try_emplace(
            p, static_cast<std::uint32_t>(groups_.size()));
        if (inserted) {
          groups_.emplace_back();
          groups_.back().partition = p;
        }
        Group& g = groups_[it->second];
        g.clients.push_back(static_cast<std::uint32_t>(i));
        ++g.alive;
        clients_[i].group = it->second;
      }
    } else {
      for (std::size_t i = 0; i < ctx_.clients.size(); ++i) {
        if (!clients_[i].active) continue;
        groups_.emplace_back();
        Group& g = groups_.back();
        g.partition = ctx_.clients[i].partition;
        g.clients.push_back(static_cast<std::uint32_t>(i));
        g.alive = 1;
        clients_[i].group = static_cast<std::uint32_t>(groups_.size() - 1);
      }
    }
  }

  void SeedQueue() {
    for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
      Group& g = groups_[gi];
      const NodeId leaf = oracle_.LeafOf(g.partition);
      // iMinD(p, leaf(p)) == 0 by containment.
      Push(static_cast<std::uint32_t>(gi), leaf, false, 0.0);
    }
  }

  // ---- Traversal -------------------------------------------------------

  void Push(std::uint32_t group_index, std::int32_t entity, bool is_partition,
            double key) {
    Group& g = groups_[group_index];
    if (!g.visited.insert(EncodeEntity(entity, is_partition)).second) return;
    queue_.push({key, group_index, entity, is_partition});
    ++stats_.queue_pushes;
  }

  bool Visited(const Group& g, std::int32_t entity, bool is_partition) const {
    return g.visited.contains(EncodeEntity(entity, is_partition));
  }

  void ExpandNode(std::uint32_t group_index, NodeId node_id) {
    Group& g = groups_[group_index];
    const NodeId parent = oracle_.Parent(node_id);
    if (parent != kInvalidNode && !Visited(g, parent, false)) {
      const double key = oracle_.PartitionToNode(g.partition, parent);
      ++stats_.lower_bound_computations;
      Push(group_index, parent, false, key);
    }
    if (oracle_.IsLeaf(node_id)) {
      for (PartitionId q : oracle_.NodePartitions(node_id)) {
        if (q == g.partition) continue;
        if (options_.skip_empty_subtrees && !index_.IsFacility(q)) continue;
        if (Visited(g, q, true)) continue;
        const double key = oracle_.PartitionToPartition(g.partition, q);
        ++stats_.lower_bound_computations;
        Push(group_index, q, true, key);
      }
    } else {
      for (NodeId ch : oracle_.Children(node_id)) {
        if (options_.skip_empty_subtrees && index_.SubtreeCount(ch) == 0) {
          continue;
        }
        if (Visited(g, ch, false)) continue;
        const double key = oracle_.PartitionToNode(g.partition, ch);
        ++stats_.lower_bound_computations;
        Push(group_index, ch, false, key);
      }
    }
  }

  void AddFacilityToGroup(Group& g, PartitionId facility) {
    const Partition& home = venue_.partition(g.partition);
    const bool reuse =
        options_.reuse_group_distances && g.partition != facility;
    if (reuse) {
      // Generalized Case-1 reuse: one door-to-facility base distance per
      // home door serves every client of the group; a client's distance is
      // min over doors of (local leg + base). Identical to the per-client
      // formula, with the door-to-door compositions hoisted out.
      base_distances_.clear();
      base_distances_.reserve(home.doors.size());
      for (DoorId d : home.doors) {
        base_distances_.push_back(oracle_.DoorToPartition(d, facility));
      }
      ++stats_.distance_computations;
      // Per-client evaluation is a pairwise min-plus reduce: fill the local
      // legs once, then let the kernel scan legs[i] + base[i]. The sum is
      // the exact two-term expression of the original loop, so answers stay
      // bit-identical across kernel backends.
      const std::size_t n_doors = home.doors.size();
      client_legs_.resize(n_doors);
      for (std::uint32_t ci : g.clients) {
        if (!clients_[ci].active) continue;
        const Client& c = ctx_.clients[ci];
        for (std::size_t i = 0; i < n_doors; ++i) {
          client_legs_[i] =
              PointToDoorDistance(c.position, venue_.door(home.doors[i]));
        }
        const double dist = kernels::MinPlusPairwise(
            client_legs_.data(), base_distances_.data(), n_doors);
        CountKernelInvocation();
        RecordRetrieval(ci, facility, dist);
      }
      return;
    }
    for (std::uint32_t ci : g.clients) {
      if (!clients_[ci].active) continue;
      const Client& c = ctx_.clients[ci];
      const double dist =
          oracle_.PointToPartition(c.position, c.partition, facility);
      ++stats_.distance_computations;
      RecordRetrieval(ci, facility, dist);
    }
  }

  // ---- Retrieval lists and events ---------------------------------------

  void RecordRetrieval(std::uint32_t ci, PartitionId facility, double dist) {
    ClientState& state = clients_[ci];
    const bool existing = index_.IsExisting(facility);
    if (existing) {
      state.best_existing = std::min(state.best_existing, dist);
    } else {
      state.candidates.emplace(facility, dist);
    }
    state.best_any = std::min(state.best_any, dist);
    events_.push({dist, ci, facility, existing});
    ++stats_.facilities_retrieved;
  }

  /// Drains events with distance <= bound, in ascending order, advancing
  /// d_low, pruning clients on existing-facility events (Lemma 5.1), and
  /// checking for a common candidate after each step (paper lines 23-37).
  void ProcessEvents(double bound) {
    while (!done_ && !events_.empty() && events_.top().dist <= bound) {
      const FacilityEvent e = events_.top();
      events_.pop();
      if (!clients_[e.client].alive) continue;
      d_low_ = std::max(d_low_, e.dist);
      if (e.existing) {
        PruneClient(e.client);
        if (done_) return;
        // A prune removes constraints: several candidates may become
        // common simultaneously.
        CheckAnswerFullScan();
      } else {
        const std::int32_t ord =
            candidate_ordinal_[static_cast<std::size_t>(e.facility)];
        IFLS_DCHECK(ord >= 0);
        if (++coverage_[static_cast<std::size_t>(ord)] == alive_count_ &&
            !candidate_collected_[static_cast<std::size_t>(ord)]) {
          CheckAnswerSingle(e.facility);
        }
      }
      ++stats_.check_answer_calls;
    }
  }

  void PruneClient(std::uint32_t ci) {
    ClientState& state = clients_[ci];
    IFLS_DCHECK(state.alive);
    state.alive = false;
    ++stats_.clients_pruned;
    pruned_floor_ = std::max(pruned_floor_, state.best_existing);
    pruned_clients_.push_back(ci);
    --alive_count_;
    if (options_.prune_clients) {
      state.active = false;
      if (!groups_.empty()) {
        Group& g = groups_[state.group];
        if (g.alive > 0) --g.alive;
      }
    }
    // Remove the client's counted coverage contributions.
    for (const auto& [facility, dist] : state.candidates) {
      if (dist <= d_low_) {
        const std::int32_t ord =
            candidate_ordinal_[static_cast<std::size_t>(facility)];
        --coverage_[static_cast<std::size_t>(ord)];
      }
    }
    if (alive_count_ == 0) FinishNoAnswer();
  }

  // ---- Answer detection --------------------------------------------------

  void CheckAnswerSingle(PartitionId candidate) {
    FinishWithCommonCandidates({candidate});
  }

  void CheckAnswerFullScan() {
    if (alive_count_ == 0) return;
    std::vector<PartitionId> common;
    for (std::size_t i = 0; i < ctx_.candidates.size(); ++i) {
      if (coverage_[i] == alive_count_ && !candidate_collected_[i]) {
        common.push_back(ctx_.candidates[i]);
      }
    }
    if (!common.empty()) FinishWithCommonCandidates(common);
  }

  /// max distance from the candidate to the surviving clients (all within
  /// d_low by construction).
  double AliveMaxDistance(PartitionId candidate) const {
    double worst = 0.0;
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      if (!clients_[i].alive) continue;
      const auto it = clients_[i].candidates.find(candidate);
      IFLS_DCHECK(it != clients_[i].candidates.end());
      worst = std::max(worst, it->second);
    }
    return worst;
  }

  /// Ranked collection applies in explicit top-k mode and always under
  /// streaming (a stream ranks the full candidate set).
  bool ranked_mode() const { return streaming_ || options_.top_k > 1; }

  void FinishWithCommonCandidates(const std::vector<PartitionId>& common) {
    IFLS_DCHECK(!common.empty());
    if (ranked_mode()) {
      CollectForTopK(common);
      return;
    }
    PartitionId best = common.front();
    double best_alive_max = AliveMaxDistance(best);
    if (common.size() > 1) {
      // Exact tie-break: candidates that became common at the same d_low
      // step are compared on their full objective, including the pruned
      // clients' min(NEF, distance) contributions.
      double best_obj = ExactObjective(best, best_alive_max);
      for (std::size_t i = 1; i < common.size(); ++i) {
        const double alive_max = AliveMaxDistance(common[i]);
        const double obj = ExactObjective(common[i], alive_max);
        if (obj < best_obj) {
          best_obj = obj;
          best = common[i];
          best_alive_max = alive_max;
        }
      }
    }
    result_->found = true;
    result_->answer = best;
    result_->objective = std::max(best_alive_max, pruned_floor_);
    done_ = true;
  }

  /// Top-k mode: record the newly common candidates with their exact
  /// objectives and finish once k are collected. Every collected objective
  /// is <= the d_low at its collection, and every uncollected candidate's
  /// objective exceeds the current d_low, so k collected candidates are
  /// exactly the top k.
  void CollectForTopK(const std::vector<PartitionId>& common) {
    for (PartitionId n : common) {
      const auto ord = static_cast<std::size_t>(
          candidate_ordinal_[static_cast<std::size_t>(n)]);
      if (candidate_collected_[ord]) continue;
      candidate_collected_[ord] = 1;
      collected_.emplace_back(n, ExactObjective(n, AliveMaxDistance(n)));
    }
    if (!streaming_ &&
        collected_.size() >= static_cast<std::size_t>(options_.top_k)) {
      FinishRanked();
    }
  }

  /// Sorts the collected candidates, truncates to k (except under streaming,
  /// which ranks everything) and publishes them. Equal objectives rank by
  /// ascending partition id so pagination boundaries are deterministic.
  void FinishRanked() {
    std::sort(collected_.begin(), collected_.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second < b.second;
                return a.first < b.first;
              });
    if (!streaming_ &&
        collected_.size() > static_cast<std::size_t>(options_.top_k)) {
      collected_.resize(static_cast<std::size_t>(options_.top_k));
    }
    result_->ranked.assign(collected_.begin(), collected_.end());
    result_->found = !collected_.empty();
    if (result_->found) {
      result_->answer = collected_.front().first;
      result_->objective = collected_.front().second;
    }
    done_ = true;
  }

  double ExactObjective(PartitionId candidate, double alive_max) {
    double worst = alive_max;
    for (std::uint32_t ci : pruned_clients_) {
      const Client& c = ctx_.clients[ci];
      const double dn =
          oracle_.PointToPartition(c.position, c.partition, candidate);
      ++stats_.distance_computations;
      worst = std::max(worst, std::min(clients_[ci].best_existing, dn));
    }
    return worst;
  }

  void FinishNoAnswer() {
    if (ranked_mode()) {
      // Rank whatever became common; when every client is covered the
      // remaining candidates' objectives are fully determined by the
      // pruned clients, so the ranking can be completed exactly.
      if (alive_count_ == 0) {
        for (std::size_t i = 0; i < ctx_.candidates.size(); ++i) {
          if (candidate_collected_[i]) continue;
          collected_.emplace_back(ctx_.candidates[i],
                                  ExactObjective(ctx_.candidates[i], 0.0));
        }
      }
      FinishRanked();
      return;
    }
    // Either every client was pruned (no candidate can improve the
    // objective) or there are no candidates at all.
    double objective = pruned_floor_;
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      if (clients_[i].alive) {
        objective = std::max(objective, clients_[i].best_existing);
      }
    }
    result_->found = false;
    result_->answer = kInvalidPartition;
    result_->objective = objective;
    done_ = true;
  }

  // ---- checkList bookkeeping (paper lines 23-25) -------------------------

  void UpdateIsFirst() {
    if (is_first_) return;
    ++stats_.check_list_calls;
    std::size_t i = 0;
    while (i < pending_first_.size()) {
      const std::uint32_t ci = pending_first_[i];
      if (!clients_[ci].alive || clients_[ci].best_any <= gd_) {
        pending_first_[i] = pending_first_.back();
        pending_first_.pop_back();
      } else {
        ++i;
      }
    }
    is_first_ = pending_first_.empty();
  }

  // ---- Members -----------------------------------------------------------

  const IflsContext& ctx_;
  const EfficientOptions& options_;
  const DistanceOracle& oracle_;
  const Venue& venue_;
  IflsResult* result_;
  QueryStats& stats_;
  FacilityIndex index_;

  TrackedVector<ClientState> clients_;
  std::vector<Group, TrackingAllocator<Group>> groups_;
  std::priority_queue<TraversalEntry,
                      TrackedVector<TraversalEntry>,
                      std::greater<TraversalEntry>>
      queue_;
  std::priority_queue<FacilityEvent, TrackedVector<FacilityEvent>,
                      std::greater<FacilityEvent>>
      events_;
  std::vector<std::int32_t> candidate_ordinal_;  // partition -> Fn ordinal
  TrackedVector<std::int32_t> coverage_;         // per Fn ordinal
  std::vector<char> candidate_collected_;        // top-k bookkeeping
  std::vector<std::pair<PartitionId, double>> collected_;
  std::vector<double> base_distances_;           // AddFacilityToGroup scratch
  std::vector<double> client_legs_;              // AddFacilityToGroup scratch
  TrackedVector<std::uint32_t> pending_first_;
  TrackedVector<std::uint32_t> pruned_clients_;

  double gd_ = 0.0;
  double d_low_ = 0.0;
  double pruned_floor_ = 0.0;
  std::int64_t alive_count_ = 0;
  bool is_first_ = false;
  bool done_ = false;
  const bool streaming_ = false;
};

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Result<IflsResult> SolveEfficient(const IflsContext& ctx,
                                  const EfficientOptions& options) {
  IFLS_RETURN_NOT_OK(ValidateContext(ctx));
  IflsResult result;
  SolverScope scope(*ctx.oracle, &result.stats);
  EfficientSolver solver(ctx, options, &result);
  solver.Run();
  scope.Finish();
  return result;
}

// ---------------------------------------------------------------------------
// RankedStream
// ---------------------------------------------------------------------------

struct RankedStream::Impl {
  IflsContext ctx;          // owned copy; the oracle pointer is borrowed
  EfficientOptions options;
  IflsResult scratch;       // solver publish target; scratch.stats cumulates
  /// One tracker for the stream's whole lifetime: the solver's tracked
  /// containers allocate and release across many Next() calls (possibly
  /// interleaved with other solves on the same thread), so every entry
  /// point re-installs this tracker instead of using a per-call SolverScope.
  MemoryTracker tracker;
  std::unique_ptr<EfficientSolver> solver;
  /// collected() mirrored in (objective, id) order; certified entries form
  /// a stable prefix, so emitted pages never reorder.
  std::vector<std::pair<PartitionId, double>> sorted;
  std::size_t emitted = 0;

  ~Impl() {
    if (solver != nullptr) {
      ScopedMemoryTracking scope(&tracker);
      solver.reset();
    }
  }

  /// A stream is exhausted once the traversal has drained and everything
  /// collected was emitted — or once |Fn| entries went out: every candidate
  /// appears exactly once in the full ranking, so a paused traversal can
  /// have nothing left to certify either.
  bool Exhausted() const {
    return emitted >= ctx.candidates.size() ||
           (solver->done() && emitted >= solver->collected().size());
  }

  void ResortCollected() {
    sorted.assign(solver->collected().begin(), solver->collected().end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second < b.second;
                return a.first < b.first;
              });
  }

  /// Stamps one entry's elapsed time, memory high-water mark and oracle
  /// counters into the cumulative stats (the per-call analogue of
  /// SolverScope::Finish).
  void Accumulate(double start_seconds, const OracleCounters& counters) {
    QueryStats& stats = scratch.stats;
    stats.elapsed_seconds += NowSeconds() - start_seconds;
    stats.peak_memory_bytes =
        std::max(stats.peak_memory_bytes, tracker.peak_bytes());
    stats.door_distance_evals += counters.door_distance_evals;
    stats.matrix_lookups += counters.matrix_lookups;
    stats.cache_hits += counters.cache_hits;
    stats.cache_misses += counters.cache_misses;
    stats.kernel_invocations += counters.kernel_invocations;
    stats.dijkstra_fallbacks += counters.dijkstra_fallbacks;
  }
};

RankedStream::RankedStream(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

RankedStream::~RankedStream() = default;

Result<std::unique_ptr<RankedStream>> RankedStream::Open(
    const IflsContext& ctx, const EfficientOptions& options) {
  IFLS_RETURN_NOT_OK(ValidateContext(ctx));
  auto impl = std::make_unique<Impl>();
  impl->ctx = ctx;
  impl->options = options;
  const double start = NowSeconds();
  OracleCounters counters;
  {
    ScopedMemoryTracking mem(&impl->tracker);
    ScopedOracleCounterSink sink(&counters);
    impl->solver = std::make_unique<EfficientSolver>(
        impl->ctx, impl->options, &impl->scratch, /*streaming=*/true);
    impl->solver->Setup();
  }
  impl->Accumulate(start, counters);
  return std::unique_ptr<RankedStream>(new RankedStream(std::move(impl)));
}

RankedStream::Page RankedStream::Next(std::size_t m) {
  Impl& impl = *impl_;
  Page page;
  if (m == 0) {
    page.exhausted = impl.Exhausted();
    return page;
  }
  TraceSpan span(TraceCategory::kSolver, "efficient/stream_next");
  const double start = NowSeconds();
  OracleCounters counters;
  {
    ScopedMemoryTracking mem(&impl.tracker);
    ScopedOracleCounterSink sink(&counters);
    if (!impl.solver->done()) impl.solver->Advance(impl.emitted + m);
  }
  impl.Accumulate(start, counters);

  impl.ResortCollected();
  const std::size_t certified =
      impl.solver->done() ? impl.sorted.size() : impl.solver->CertifiedCount();
  const std::size_t limit = std::min(certified, impl.emitted + m);
  page.items.assign(impl.sorted.begin() + static_cast<std::ptrdiff_t>(impl.emitted),
                    impl.sorted.begin() + static_cast<std::ptrdiff_t>(limit));
  impl.emitted = limit;
  page.exhausted = impl.Exhausted();
  return page;
}

bool RankedStream::exhausted() const { return impl_->Exhausted(); }

std::size_t RankedStream::emitted() const { return impl_->emitted; }

std::size_t RankedStream::total_candidates() const {
  return impl_->ctx.candidates.size();
}

const QueryStats& RankedStream::stats() const { return impl_->scratch.stats; }

}  // namespace ifls
