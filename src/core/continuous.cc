#include "src/core/continuous.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/common/logging.h"
#include "src/index/nn_search.h"

namespace ifls {
namespace {

std::vector<PartitionId> Sorted(std::vector<PartitionId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

bool Contains(const std::vector<PartitionId>& v, PartitionId p) {
  return std::binary_search(v.begin(), v.end(), p);
}

void SortedInsert(std::vector<PartitionId>* v, PartitionId p) {
  v->insert(std::upper_bound(v->begin(), v->end(), p), p);
}

void SortedErase(std::vector<PartitionId>* v, PartitionId p) {
  v->erase(std::lower_bound(v->begin(), v->end(), p));
}

}  // namespace

ContinuousIfls::ContinuousIfls(const DistanceOracle* oracle,
                               std::vector<PartitionId> existing,
                               std::vector<PartitionId> candidates,
                               Options options)
    : oracle_(oracle),
      existing_(Sorted(std::move(existing))),
      candidates_(Sorted(std::move(candidates))),
      options_(options),
      existing_index_(oracle, existing_),
      candidate_index_(oracle, {}) {
  IFLS_CHECK(oracle != nullptr);
  candidate_index_.AddCandidates(candidates_);
}

void ContinuousIfls::RefreshStaticBounds(ClientRecord* record) {
  const Client& c = record->client;
  const auto nef = NearestFacility(existing_index_, c.position, c.partition,
                                   FacilityFilter::kExistingOnly, nullptr);
  record->nef = nef.has_value() ? nef->distance : kInfDistance;
  record->nef_facility = nef.has_value() ? nef->facility : kInvalidPartition;
  const auto nc = NearestFacility(candidate_index_, c.position, c.partition,
                                  FacilityFilter::kCandidateOnly, nullptr);
  record->nc = nc.has_value() ? nc->distance : kInfDistance;
  record->nc_facility = nc.has_value() ? nc->facility : kInvalidPartition;
}

void ContinuousIfls::RefreshCertificate(ClientRecord* record) {
  if (!has_cached_ || !cached_.found) {
    record->answer_dist = kInfDistance;
    return;
  }
  const Client& c = record->client;
  record->answer_dist = oracle_->PointToPartition(c.position, c.partition,
                                                  cached_.answer);
}

void ContinuousIfls::RecomputeDerived(ClientRecord* record) {
  record->floor = std::min(record->nef, record->nc);
  record->certificate = (has_cached_ && cached_.found)
                            ? std::min(record->nef, record->answer_dist)
                            : record->nef;
}

void ContinuousIfls::InsertBounds(const ClientRecord& record) {
  certificates_.insert(record.certificate);
  floors_.insert(record.floor);
}

void ContinuousIfls::EraseBounds(const ClientRecord& record) {
  auto cert = certificates_.find(record.certificate);
  if (cert != certificates_.end()) certificates_.erase(cert);
  auto floor = floors_.find(record.floor);
  if (floor != floors_.end()) floors_.erase(floor);
}

void ContinuousIfls::RebuildExistingIndex() {
  existing_index_ = FacilityIndex(oracle_, existing_);
}

void ContinuousIfls::RebuildCandidateIndex() {
  candidate_index_ = FacilityIndex(oracle_, {});
  candidate_index_.AddCandidates(candidates_);
}

ClientId ContinuousIfls::AddClient(const Point& position,
                                   PartitionId partition) {
  IFLS_CHECK(partition >= 0 &&
             static_cast<std::size_t>(partition) <
                 oracle_->venue().num_partitions());
  IFLS_CHECK(oracle_->venue().partition(partition).rect.Contains(position))
      << "client position outside its partition";
  ClientRecord record;
  record.client.id = next_id_++;
  record.client.position = position;
  record.client.partition = partition;
  RefreshStaticBounds(&record);
  RefreshCertificate(&record);
  RecomputeDerived(&record);
  InsertBounds(record);
  const ClientId id = record.client.id;
  clients_.emplace(id, std::move(record));
  dirty_ = true;
  return id;
}

Status ContinuousIfls::RemoveClient(ClientId id) {
  auto it = clients_.find(id);
  if (it == clients_.end()) {
    return Status::NotFound("no client with id " + std::to_string(id));
  }
  EraseBounds(it->second);
  clients_.erase(it);
  dirty_ = true;
  return Status::OK();
}

Status ContinuousIfls::MoveClient(ClientId id, const Point& position,
                                  PartitionId partition) {
  auto it = clients_.find(id);
  if (it == clients_.end()) {
    return Status::NotFound("no client with id " + std::to_string(id));
  }
  if (partition < 0 ||
      static_cast<std::size_t>(partition) >=
          oracle_->venue().num_partitions() ||
      !oracle_->venue().partition(partition).rect.Contains(position)) {
    return Status::InvalidArgument("new position outside the partition");
  }
  ClientRecord& record = it->second;
  EraseBounds(record);
  record.client.position = position;
  record.client.partition = partition;
  RefreshStaticBounds(&record);
  RefreshCertificate(&record);
  RecomputeDerived(&record);
  InsertBounds(record);
  dirty_ = true;
  return Status::OK();
}

Status ContinuousIfls::AddExistingFacility(PartitionId p) {
  if (p < 0 || static_cast<std::size_t>(p) >=
                   oracle_->venue().num_partitions()) {
    return Status::InvalidArgument("facility partition out of range: " +
                                   std::to_string(p));
  }
  if (Contains(existing_, p)) {
    return Status::AlreadyExists("existing facility already open: " +
                                 std::to_string(p));
  }
  if (Contains(candidates_, p)) {
    return Status::FailedPrecondition(
        "partition is a candidate location: " + std::to_string(p));
  }
  SortedInsert(&existing_, p);
  RebuildExistingIndex();
  // A new existing facility can only shrink every NEF: one exact distance
  // evaluation per client, no search.
  for (auto& [id, record] : clients_) {
    EraseBounds(record);
    const Client& c = record.client;
    const double d = oracle_->PointToPartition(c.position, c.partition, p);
    if (d < record.nef) {
      record.nef = d;
      record.nef_facility = p;
    }
    RecomputeDerived(&record);
    InsertBounds(record);
  }
  dirty_ = true;
  return Status::OK();
}

Status ContinuousIfls::RemoveExistingFacility(PartitionId p) {
  if (!Contains(existing_, p)) {
    return Status::NotFound("no existing facility at partition " +
                            std::to_string(p));
  }
  SortedErase(&existing_, p);
  RebuildExistingIndex();
  // Only clients anchored on the removed facility re-search.
  for (auto& [id, record] : clients_) {
    if (record.nef_facility != p) continue;
    EraseBounds(record);
    const Client& c = record.client;
    const auto nef = NearestFacility(existing_index_, c.position, c.partition,
                                     FacilityFilter::kExistingOnly, nullptr);
    record.nef = nef.has_value() ? nef->distance : kInfDistance;
    record.nef_facility = nef.has_value() ? nef->facility : kInvalidPartition;
    RecomputeDerived(&record);
    InsertBounds(record);
  }
  dirty_ = true;
  return Status::OK();
}

Status ContinuousIfls::AddCandidateFacility(PartitionId p) {
  if (p < 0 || static_cast<std::size_t>(p) >=
                   oracle_->venue().num_partitions()) {
    return Status::InvalidArgument("candidate partition out of range: " +
                                   std::to_string(p));
  }
  if (Contains(candidates_, p)) {
    return Status::AlreadyExists("candidate already present: " +
                                 std::to_string(p));
  }
  if (Contains(existing_, p)) {
    return Status::FailedPrecondition(
        "partition is an existing facility: " + std::to_string(p));
  }
  SortedInsert(&candidates_, p);
  RebuildCandidateIndex();
  for (auto& [id, record] : clients_) {
    EraseBounds(record);
    const Client& c = record.client;
    const double d = oracle_->PointToPartition(c.position, c.partition, p);
    if (d < record.nc) {
      record.nc = d;
      record.nc_facility = p;
    }
    RecomputeDerived(&record);
    InsertBounds(record);
  }
  // The cached answer keeps its exact objective, but the new candidate may
  // beat it; the certified bound (which the new candidate just lowered)
  // decides whether AnswerWithin must actually re-solve.
  dirty_ = true;
  return Status::OK();
}

Status ContinuousIfls::RemoveCandidateFacility(PartitionId p) {
  if (!Contains(candidates_, p)) {
    return Status::NotFound("no candidate at partition " + std::to_string(p));
  }
  SortedErase(&candidates_, p);
  RebuildCandidateIndex();
  const bool removed_answer =
      has_cached_ && cached_.found && cached_.answer == p;
  if (removed_answer) {
    has_cached_ = false;
    dirty_ = true;
  } else if (has_cached_) {
    // The optimum over a shrunk candidate set can only rise and the cached
    // answer still achieves its objective, so the cache stays clean — but
    // drop the removed candidate from the ranked tail.
    std::erase_if(cached_.ranked,
                  [p](const auto& entry) { return entry.first == p; });
  }
  for (auto& [id, record] : clients_) {
    const bool answer_changed = removed_answer;
    if (record.nc_facility != p && !answer_changed) continue;
    EraseBounds(record);
    if (record.nc_facility == p) {
      const Client& c = record.client;
      const auto nc = NearestFacility(candidate_index_, c.position,
                                      c.partition,
                                      FacilityFilter::kCandidateOnly, nullptr);
      record.nc = nc.has_value() ? nc->distance : kInfDistance;
      record.nc_facility = nc.has_value() ? nc->facility : kInvalidPartition;
    }
    RefreshCertificate(&record);
    RecomputeDerived(&record);
    InsertBounds(record);
  }
  return Status::OK();
}

Result<IflsResult> ContinuousIfls::Resolve() {
  IflsContext ctx;
  ctx.oracle = oracle_;
  ctx.existing = existing_;
  ctx.candidates = candidates_;
  ctx.clients.reserve(clients_.size());
  for (const auto& [id, record] : clients_) {
    ctx.clients.push_back(record.client);
  }
  IFLS_ASSIGN_OR_RETURN(cached_, SolveEfficient(ctx, options_.solver));
  has_cached_ = true;
  ++solve_count_;
  dirty_ = false;
  // Rebuild the certificates against the new answer.
  certificates_.clear();
  floors_.clear();
  for (auto& [id, record] : clients_) {
    RefreshCertificate(&record);
    RecomputeDerived(&record);
    InsertBounds(record);
  }
  return cached_;
}

Result<IflsResult> ContinuousIfls::Answer() {
  if (!dirty_ && has_cached_) return cached_;
  return Resolve();
}

Result<ContinuousIfls::MonitorAnswer> ContinuousIfls::AnswerWithin(
    double tolerance) {
  if (tolerance < 0.0) {
    return Status::InvalidArgument("tolerance must be non-negative");
  }
  MonitorAnswer answer;
  if (!dirty_ && has_cached_) {
    answer.result = cached_;
    answer.refreshed = false;
    return answer;
  }
  if (has_cached_ && cached_.found && !clients_.empty()) {
    const double current = *certificates_.rbegin();  // exact f(cached A)
    const double lower = *floors_.rbegin();          // <= any f(n)
    if (current <= (1.0 + tolerance) * lower) {
      ++skip_count_;
      answer.result = cached_;
      answer.result.objective = current;
      answer.refreshed = false;
      return answer;
    }
  }
  IFLS_ASSIGN_OR_RETURN(answer.result, Resolve());
  answer.refreshed = true;
  return answer;
}

}  // namespace ifls
