#include "src/core/continuous.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/index/nn_search.h"

namespace ifls {

ContinuousIfls::ContinuousIfls(const DistanceOracle* oracle,
                               std::vector<PartitionId> existing,
                               std::vector<PartitionId> candidates,
                               Options options)
    : oracle_(oracle),
      existing_(std::move(existing)),
      candidates_(std::move(candidates)),
      options_(options),
      existing_index_(oracle, existing_),
      candidate_index_(oracle, {}) {
  IFLS_CHECK(oracle != nullptr);
  candidate_index_.AddCandidates(candidates_);
}

void ContinuousIfls::RefreshStaticBounds(ClientRecord* record) {
  const Client& c = record->client;
  const auto nef = NearestFacility(existing_index_, c.position, c.partition,
                                   FacilityFilter::kExistingOnly, nullptr);
  record->nef = nef.has_value() ? nef->distance : kInfDistance;
  const auto nc = NearestFacility(candidate_index_, c.position, c.partition,
                                  FacilityFilter::kCandidateOnly, nullptr);
  record->floor = std::min(record->nef,
                           nc.has_value() ? nc->distance : kInfDistance);
}

void ContinuousIfls::RefreshCertificate(ClientRecord* record) {
  if (!has_cached_ || !cached_.found) {
    record->certificate = record->nef;
    return;
  }
  const Client& c = record->client;
  record->certificate =
      std::min(record->nef,
               oracle_->PointToPartition(c.position, c.partition,
                                       cached_.answer));
}

void ContinuousIfls::InsertBounds(const ClientRecord& record) {
  certificates_.insert(record.certificate);
  floors_.insert(record.floor);
}

void ContinuousIfls::EraseBounds(const ClientRecord& record) {
  auto cert = certificates_.find(record.certificate);
  if (cert != certificates_.end()) certificates_.erase(cert);
  auto floor = floors_.find(record.floor);
  if (floor != floors_.end()) floors_.erase(floor);
}

ClientId ContinuousIfls::AddClient(const Point& position,
                                   PartitionId partition) {
  IFLS_CHECK(partition >= 0 &&
             static_cast<std::size_t>(partition) <
                 oracle_->venue().num_partitions());
  IFLS_CHECK(oracle_->venue().partition(partition).rect.Contains(position))
      << "client position outside its partition";
  ClientRecord record;
  record.client.id = next_id_++;
  record.client.position = position;
  record.client.partition = partition;
  RefreshStaticBounds(&record);
  RefreshCertificate(&record);
  InsertBounds(record);
  const ClientId id = record.client.id;
  clients_.emplace(id, std::move(record));
  dirty_ = true;
  return id;
}

Status ContinuousIfls::RemoveClient(ClientId id) {
  auto it = clients_.find(id);
  if (it == clients_.end()) {
    return Status::NotFound("no client with id " + std::to_string(id));
  }
  EraseBounds(it->second);
  clients_.erase(it);
  dirty_ = true;
  return Status::OK();
}

Status ContinuousIfls::MoveClient(ClientId id, const Point& position,
                                  PartitionId partition) {
  auto it = clients_.find(id);
  if (it == clients_.end()) {
    return Status::NotFound("no client with id " + std::to_string(id));
  }
  if (partition < 0 ||
      static_cast<std::size_t>(partition) >=
          oracle_->venue().num_partitions() ||
      !oracle_->venue().partition(partition).rect.Contains(position)) {
    return Status::InvalidArgument("new position outside the partition");
  }
  ClientRecord& record = it->second;
  EraseBounds(record);
  record.client.position = position;
  record.client.partition = partition;
  RefreshStaticBounds(&record);
  RefreshCertificate(&record);
  InsertBounds(record);
  dirty_ = true;
  return Status::OK();
}

Result<IflsResult> ContinuousIfls::Resolve() {
  IflsContext ctx;
  ctx.oracle = oracle_;
  ctx.existing = existing_;
  ctx.candidates = candidates_;
  ctx.clients.reserve(clients_.size());
  for (const auto& [id, record] : clients_) {
    ctx.clients.push_back(record.client);
  }
  IFLS_ASSIGN_OR_RETURN(cached_, SolveEfficient(ctx, options_.solver));
  has_cached_ = true;
  ++solve_count_;
  dirty_ = false;
  // Rebuild the certificates against the new answer.
  certificates_.clear();
  floors_.clear();
  for (auto& [id, record] : clients_) {
    RefreshCertificate(&record);
    InsertBounds(record);
  }
  return cached_;
}

Result<IflsResult> ContinuousIfls::Answer() {
  if (!dirty_ && has_cached_) return cached_;
  return Resolve();
}

Result<ContinuousIfls::MonitorAnswer> ContinuousIfls::AnswerWithin(
    double tolerance) {
  if (tolerance < 0.0) {
    return Status::InvalidArgument("tolerance must be non-negative");
  }
  MonitorAnswer answer;
  if (!dirty_ && has_cached_) {
    answer.result = cached_;
    answer.refreshed = false;
    return answer;
  }
  if (has_cached_ && cached_.found && !clients_.empty()) {
    const double current = *certificates_.rbegin();  // exact f(cached A)
    const double lower = *floors_.rbegin();          // <= any f(n)
    if (current <= (1.0 + tolerance) * lower) {
      ++skip_count_;
      answer.result = cached_;
      answer.result.objective = current;
      answer.refreshed = false;
      return answer;
    }
  }
  IFLS_ASSIGN_OR_RETURN(answer.result, Resolve());
  answer.refreshed = true;
  return answer;
}

}  // namespace ifls
