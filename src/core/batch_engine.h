#ifndef IFLS_CORE_BATCH_ENGINE_H_
#define IFLS_CORE_BATCH_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/query.h"
#include "src/core/solve_dispatch.h"

namespace ifls {

/// One item of a batch: an objective plus the query's immutable inputs. All
/// items of a batch must reference trees over venues that stay alive for
/// the duration of the run; items may share a tree or use different ones.
struct BatchQuery {
  IflsObjective objective = IflsObjective::kMinMax;
  IflsContext context;
};

/// Per-query outcome, in input order. `status` is non-ok when that query's
/// context failed validation (other queries are unaffected); `result` is
/// meaningful only when `status.ok()`.
struct BatchQueryOutcome {
  Status status;
  IflsResult result;
};

/// Engine configuration. The solver option structs apply to every query of
/// the matching objective.
struct BatchEngineOptions {
  /// Worker threads; <= 0 selects ThreadPool::DefaultThreads(). 1 runs
  /// every query inline on the calling thread.
  int num_threads = 0;
  EfficientOptions minmax;
  MinDistOptions mindist;
  MaxSumOptions maxsum;
};

/// Aggregate metrics of the most recent Run/RunSequential.
struct BatchRunReport {
  int num_threads = 0;
  std::size_t num_queries = 0;
  std::size_t num_failed = 0;
  double wall_seconds = 0.0;
  double queries_per_second = 0.0;
  /// Sum over queries of their exact indoor-distance evaluations.
  std::int64_t total_distance_computations = 0;
  /// Largest single-query logical memory high-water mark. Still meaningful
  /// under concurrency: each query's peak is tracked by its own thread-local
  /// MemoryTracker.
  std::int64_t max_peak_memory_bytes = 0;
};

/// Parallel batch query engine: fans a vector of IFLS queries
/// (MinMax/MinDist/MaxSum) out across a fixed thread pool. The shared
/// distance oracle is only ever read; every query gets its own solver state,
/// thread-local memory tracking and a thread-local index-counter sink, so
/// results (answers, objectives, tie-breaks, and per-query work counters)
/// are bit-identical to sequential execution and independent of worker
/// interleaving: outcome[i] depends only on queries[i].
///
/// Queries are claimed dynamically from an atomic cursor, so large batches
/// load-balance even when per-query cost is skewed.
class BatchQueryEngine {
 public:
  explicit BatchQueryEngine(BatchEngineOptions options = {});

  /// Runs every query across the pool; outcome i corresponds to query i.
  std::vector<BatchQueryOutcome> Run(const std::vector<BatchQuery>& queries);

  /// Reference implementation: the same per-query solve, in a plain loop on
  /// the calling thread. Differential tests pin Run() against this.
  std::vector<BatchQueryOutcome> RunSequential(
      const std::vector<BatchQuery>& queries);

  /// Solves one query with the engine's solver options (the unit of work
  /// both Run paths share).
  BatchQueryOutcome RunOne(const BatchQuery& query) const;

  int num_threads() const { return pool_.num_threads(); }
  const BatchEngineOptions& options() const { return options_; }

  /// Metrics of the most recent Run/RunSequential call.
  const BatchRunReport& last_report() const { return report_; }

 private:
  void FillReport(const std::vector<BatchQueryOutcome>& outcomes,
                  double wall_seconds, int num_threads);

  BatchEngineOptions options_;
  ThreadPool pool_;
  BatchRunReport report_;
};

}  // namespace ifls

#endif  // IFLS_CORE_BATCH_ENGINE_H_
