#include "src/core/mindist.h"

#include <algorithm>
#include <vector>

#include "src/common/trace.h"
#include "src/core/extension_engine.h"

namespace ifls {
namespace {

/// Per-candidate aggregate for MinDist. Invariants (see §7 discussion in
/// DESIGN.md):
///   total(n) = sum_alive + (alive - k_alive) * Gd          [lower bound]
///            + pruned_nef_sum + pruned_adj                 [exact]
/// where a pruned client's contribution is min(NEF, dist) — exact because
/// any candidate unretrieved at prune time is provably no closer than the
/// client's NEF.
class MinDistPolicy {
 public:
  void Init(std::size_t num_candidates) {
    sum_alive_.assign(num_candidates, 0.0);
    k_alive_.assign(num_candidates, 0);
    pruned_adj_.assign(num_candidates, 0.0);
    pruned_nef_sum_ = 0.0;
  }

  void OnCandidateEvent(std::size_t ord, double dist) {
    sum_alive_[ord] += dist;
    ++k_alive_[ord];
  }

  void OnPrune(double nef, const internal::RetrievedMap& retrieved,
               double d_low,
               const std::vector<std::int32_t>& ordinal_of_partition) {
    pruned_nef_sum_ += nef;
    for (const auto& [facility, dist] : retrieved) {
      const auto ord = static_cast<std::size_t>(
          ordinal_of_partition[static_cast<std::size_t>(facility)]);
      if (dist <= d_low) {
        sum_alive_[ord] -= dist;
        --k_alive_[ord];
      }
      pruned_adj_[ord] += std::min(nef, dist) - nef;
    }
  }

  std::int32_t TryDecide(std::int64_t alive, double gd,
                         double* objective) const {
    std::int32_t best = -1;
    double best_bound = kInfDistance;
    bool best_exact = false;
    for (std::size_t i = 0; i < sum_alive_.size(); ++i) {
      const std::int64_t missing = alive - k_alive_[i];
      const bool exact = missing == 0;
      const double bound = sum_alive_[i] + (exact ? 0.0 : missing * gd) +
                           pruned_nef_sum_ + pruned_adj_[i];
      if (bound < best_bound || (bound == best_bound && exact && !best_exact)) {
        best_bound = bound;
        best = static_cast<std::int32_t>(i);
        best_exact = exact;
      }
    }
    if (best < 0 || !best_exact) return -1;
    *objective = best_bound;
    return best;
  }

 private:
  std::vector<double> sum_alive_;
  std::vector<std::int64_t> k_alive_;
  std::vector<double> pruned_adj_;
  double pruned_nef_sum_ = 0.0;
};

}  // namespace

Result<IflsResult> SolveMinDist(const IflsContext& ctx,
                                const MinDistOptions& options) {
  IFLS_RETURN_NOT_OK(ValidateContext(ctx));
  IflsResult result;
  SolverScope scope(*ctx.oracle, &result.stats);
  TraceSpan span(TraceCategory::kSolver, "mindist");
  internal::IncrementalObjectiveSolver<MinDistPolicy> solver(
      ctx, options.group_clients, &result);
  solver.Run();
  scope.Finish();
  return result;
}

}  // namespace ifls
