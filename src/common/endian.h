#ifndef IFLS_COMMON_ENDIAN_H_
#define IFLS_COMMON_ENDIAN_H_

#include <cstddef>
#include <cstring>
#include <string>
#include <type_traits>

namespace ifls {

// Little-endian read/write helpers shared by the on-disk snapshot codec
// (index/vip_tree_io_v3) and the network wire codec (net/wire). Both formats
// are defined as little-endian; the library targets LE hosts only (x86-64,
// arm64), so "encode LE" is a memcpy — the static_assert turns a silent
// byte-order corruption on an exotic port into a compile error, and every
// helper funnels through one place a BE port would have to fix.
static_assert(__BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__,
              "IFLS binary formats are little-endian; big-endian hosts need "
              "byte-swapping added to src/common/endian.h");

/// Reads a trivially-copyable T from a (possibly unaligned) little-endian
/// byte buffer holding at least sizeof(T) bytes.
template <typename T>
inline T LoadLE(const void* p) {
  static_assert(std::is_trivially_copyable_v<T>,
                "LoadLE requires a trivially copyable type");
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

/// Writes `v` to a (possibly unaligned) byte buffer in little-endian order.
template <typename T>
inline void StoreLE(void* p, T v) {
  static_assert(std::is_trivially_copyable_v<T>,
                "StoreLE requires a trivially copyable type");
  std::memcpy(p, &v, sizeof(T));
}

/// Appends `v` in little-endian order to a byte string (wire encoding).
template <typename T>
inline void AppendLE(std::string* out, T v) {
  static_assert(std::is_trivially_copyable_v<T>,
                "AppendLE requires a trivially copyable type");
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

}  // namespace ifls

#endif  // IFLS_COMMON_ENDIAN_H_
