#ifndef IFLS_COMMON_WORKSPACE_POOL_H_
#define IFLS_COMMON_WORKSPACE_POOL_H_

#include <cstddef>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace ifls {

/// Thread-safe pool of reusable scratch objects (Dijkstra workspaces, NN
/// queues, per-worker buffers). Workers Acquire() a lease for the duration
/// of a work item or a drain loop; the object returns to the free list when
/// the lease dies, keeping its grown capacity for the next user. This moves
/// per-query scratch allocation off the hot path without resorting to
/// per-object thread affinity: any worker can reuse any idle workspace.
///
/// T must be default-constructible. Pooled objects are NOT reset between
/// leases — reusers must overwrite (that is what lets capacity survive).
template <typename T>
class WorkspacePool {
 public:
  WorkspacePool() = default;

  WorkspacePool(const WorkspacePool&) = delete;
  WorkspacePool& operator=(const WorkspacePool&) = delete;

  /// Move-only RAII handle to a pooled object.
  class Lease {
   public:
    Lease() = default;
    Lease(WorkspacePool* pool, std::unique_ptr<T> object)
        : pool_(pool), object_(std::move(object)) {}
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), object_(std::move(other.object_)) {
      other.pool_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        Release();
        pool_ = other.pool_;
        object_ = std::move(other.object_);
        other.pool_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { Release(); }

    T* get() const { return object_.get(); }
    T& operator*() const { return *object_; }
    T* operator->() const { return object_.get(); }
    explicit operator bool() const { return object_ != nullptr; }

   private:
    void Release() {
      if (pool_ != nullptr && object_ != nullptr) {
        pool_->Return(std::move(object_));
      }
      pool_ = nullptr;
      object_ = nullptr;
    }

    WorkspacePool* pool_ = nullptr;
    std::unique_ptr<T> object_;
  };

  /// Pops an idle object, or default-constructs one when none is free.
  Lease Acquire() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!idle_.empty()) {
        std::unique_ptr<T> object = std::move(idle_.back());
        idle_.pop_back();
        return Lease(this, std::move(object));
      }
      ++total_created_;
    }
    // Construct outside the lock: T's constructor may be heavy.
    return Lease(this, std::make_unique<T>());
  }

  /// Objects currently sitting idle in the pool.
  std::size_t idle_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return idle_.size();
  }

  /// Objects ever constructed by this pool (== peak concurrent leases).
  std::size_t total_created() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_created_;
  }

 private:
  void Return(std::unique_ptr<T> object) {
    std::lock_guard<std::mutex> lock(mu_);
    idle_.push_back(std::move(object));
  }

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<T>> idle_;
  std::size_t total_created_ = 0;
};

}  // namespace ifls

#endif  // IFLS_COMMON_WORKSPACE_POOL_H_
