#ifndef IFLS_COMMON_CONCURRENT_CACHE_H_
#define IFLS_COMMON_CONCURRENT_CACHE_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <thread>

namespace ifls {

/// Sharded, fixed-capacity concurrent memo for door-to-door distances
/// (uint64 key -> double), replacing the single-mutex unordered_map that
/// used to serialize every DoorToDoor call across the batch engine's and the
/// serving subsystem's query threads.
///
/// Layout: a power-of-two number of shards, each a power-of-two open-
/// addressing slot array probed linearly over a short window. A slot is a
/// 128-bit (key, value) payload plus a seqlock word:
///
///   seq (even = stable, odd = writer active) | key | value bits
///
/// Readers are pure loads — key match, then value validated by re-reading
/// key and seq (accept only if the sequence was even and unchanged around
/// the value read). Writers claim a slot by CAS-ing seq even -> odd, write
/// key/value, then publish with seq+2 (release). Claiming makes writers
/// mutually exclusive per slot without any lock shared across slots, and
/// the seq validation makes slot reuse (eviction) safe: a reader racing a
/// rewrite simply misses. Everything is atomics, so the scheme is exactly
/// checkable under TSan (tests/concurrent_cache_test.cc).
///
/// Eviction: when an insert finds its whole probe window occupied by other
/// keys, it overwrites a deterministic in-window victim derived from the
/// key hash (random-ish replacement, zero metadata). Inserts racing a
/// claimed slot drop their write — the value is a memo, recomputable for
/// free, so "lose an insert occasionally" beats "wait".
///
/// Correctness leans on one invariant the callers guarantee: the value for
/// a key is an immutable function of the key (door-graph distances are
/// static), so whichever insert wins a race stores the same bits, and a
/// stale-but-matching read is still the right answer.
class ConcurrentDoorCache {
 public:
  struct Stats {
    std::uint64_t entries = 0;    // occupied slots (never counts rewrites)
    std::uint64_t evictions = 0;  // occupied-slot overwrites
    std::uint64_t capacity = 0;   // total slots
    std::uint64_t shards = 0;
  };

  /// `capacity` is rounded up so every shard holds a power-of-two number of
  /// slots; `shards` (power of two; 0 = pick from hardware concurrency).
  explicit ConcurrentDoorCache(std::size_t capacity = kDefaultCapacity,
                               std::size_t shards = 0) {
    if (shards == 0) {
      const unsigned hw = std::thread::hardware_concurrency();
      shards = std::bit_ceil(std::size_t{4} * (hw == 0 ? 4 : hw));
      if (shards > kMaxShards) shards = kMaxShards;
    }
    shards = std::bit_ceil(shards);
    if (capacity < shards * kProbeWindow) capacity = shards * kProbeWindow;
    std::size_t per_shard = std::bit_ceil((capacity + shards - 1) / shards);
    if (per_shard < kProbeWindow) per_shard = kProbeWindow;
    shard_mask_ = shards - 1;
    slot_mask_ = per_shard - 1;
    shards_ = std::make_unique<Shard[]>(shards);
    for (std::size_t s = 0; s <= shard_mask_; ++s) {
      shards_[s].slots = std::make_unique<Slot[]>(per_shard);
    }
  }

  ConcurrentDoorCache(const ConcurrentDoorCache&) = delete;
  ConcurrentDoorCache& operator=(const ConcurrentDoorCache&) = delete;

  /// True (and `*out` filled) when `key` is present. Keys must stay below
  /// kReservedKeys (door-pair keys, two 31-bit ids, always are).
  bool Lookup(std::uint64_t key, double* out) const {
    const std::uint64_t h = Mix(key);
    const Shard& shard = shards_[(h >> kShardShift) & shard_mask_];
    std::size_t pos = static_cast<std::size_t>(h) & slot_mask_;
    for (std::size_t p = 0; p < kProbeWindow; ++p, pos = (pos + 1) & slot_mask_) {
      const Slot& slot = shard.slots[pos];
      const std::uint64_t k = slot.key.load(std::memory_order_acquire);
      if (k == kEmptyKey) return false;  // inserts fill windows front-first
      if (k != key) continue;
      const std::uint64_t s1 = slot.seq.load(std::memory_order_acquire);
      if ((s1 & 1) != 0) return false;  // writer mid-publish: miss
      const std::uint64_t bits =
          slot.value_bits.load(std::memory_order_acquire);
      const std::uint64_t k2 = slot.key.load(std::memory_order_acquire);
      std::atomic_thread_fence(std::memory_order_acquire);
      const std::uint64_t s2 = slot.seq.load(std::memory_order_relaxed);
      if (k2 != key || s2 != s1) return false;  // rewritten under us: miss
      std::memcpy(out, &bits, sizeof(*out));
      return true;
    }
    return false;
  }

  /// Inserts (best effort — may drop under contention, may evict another
  /// entry when its window is full). Safe from any number of threads.
  void Insert(std::uint64_t key, double value) {
    const std::uint64_t h = Mix(key);
    Shard& shard = shards_[(h >> kShardShift) & shard_mask_];
    const std::size_t start = static_cast<std::size_t>(h) & slot_mask_;
    std::size_t pos = start;
    for (std::size_t p = 0; p < kProbeWindow;
         ++p, pos = (pos + 1) & slot_mask_) {
      Slot& slot = shard.slots[pos];
      const std::uint64_t k = slot.key.load(std::memory_order_acquire);
      if (k == key) return;  // present (same deterministic value)
      if (k != kEmptyKey) continue;
      if (WriteSlot(slot, key, value, /*expect_empty=*/true)) {
        shard.occupied.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      // Lost the claim race; the winner may have written our key or
      // another. Re-examine the same slot once, then move on.
      if (slot.key.load(std::memory_order_acquire) == key) return;
    }
    // Window full of other keys: overwrite a deterministic in-window
    // victim. A failed claim means a racing writer owns it — drop.
    const std::size_t victim =
        (start + ((h >> 37) & (kProbeWindow - 1))) & slot_mask_;
    if (WriteSlot(shard.slots[victim], key, value, /*expect_empty=*/false)) {
      shard.evictions.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Resets every slot. Safe concurrently with readers/writers (they miss
  /// or drop); counters (entries, evictions) reset too.
  void Clear() {
    for (std::size_t s = 0; s <= shard_mask_; ++s) {
      Shard& shard = shards_[s];
      for (std::size_t i = 0; i <= slot_mask_; ++i) {
        Slot& slot = shard.slots[i];
        std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
        if ((seq & 1) != 0) continue;  // writer active: it stays
        if (!slot.seq.compare_exchange_strong(seq, seq + 1,
                                              std::memory_order_acq_rel)) {
          continue;
        }
        slot.key.store(kEmptyKey, std::memory_order_relaxed);
        slot.value_bits.store(0, std::memory_order_relaxed);
        slot.seq.store(seq + 2, std::memory_order_release);
      }
      shard.occupied.store(0, std::memory_order_relaxed);
      shard.evictions.store(0, std::memory_order_relaxed);
    }
  }

  /// Occupied slots (stable only when quiescent, like any cache gauge).
  std::size_t size() const {
    std::uint64_t total = 0;
    for (std::size_t s = 0; s <= shard_mask_; ++s) {
      total += shards_[s].occupied.load(std::memory_order_relaxed);
    }
    return static_cast<std::size_t>(total);
  }

  Stats stats() const {
    Stats st;
    for (std::size_t s = 0; s <= shard_mask_; ++s) {
      st.entries += shards_[s].occupied.load(std::memory_order_relaxed);
      st.evictions += shards_[s].evictions.load(std::memory_order_relaxed);
    }
    st.capacity = (shard_mask_ + 1) * (slot_mask_ + 1);
    st.shards = shard_mask_ + 1;
    return st;
  }

  std::size_t capacity() const { return (shard_mask_ + 1) * (slot_mask_ + 1); }
  std::size_t num_shards() const { return shard_mask_ + 1; }

  std::size_t MemoryFootprintBytes() const {
    return sizeof(ConcurrentDoorCache) +
           num_shards() * (sizeof(Shard) + (slot_mask_ + 1) * sizeof(Slot));
  }

  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;
  /// Keys >= this collide with the empty sentinel and must not be used.
  static constexpr std::uint64_t kReservedKeys = ~std::uint64_t{0};

 private:
  static constexpr std::size_t kProbeWindow = 8;
  static constexpr std::size_t kMaxShards = 256;
  static constexpr unsigned kShardShift = 48;
  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> key{kEmptyKey};
    std::atomic<std::uint64_t> value_bits{0};
  };

  struct alignas(64) Shard {
    std::unique_ptr<Slot[]> slots;
    std::atomic<std::uint64_t> occupied{0};
    std::atomic<std::uint64_t> evictions{0};
  };

  /// splitmix64 finalizer: full-avalanche spread of the packed door pair
  /// across shard and slot bits.
  static std::uint64_t Mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  /// Claims `slot` (seq even -> odd), writes the payload, publishes
  /// (seq + 2). Returns false without writing when the claim fails or the
  /// occupancy precondition no longer holds.
  static bool WriteSlot(Slot& slot, std::uint64_t key, double value,
                        bool expect_empty) {
    std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
    if ((seq & 1) != 0) return false;
    if (!slot.seq.compare_exchange_strong(seq, seq + 1,
                                          std::memory_order_acq_rel)) {
      return false;
    }
    // Claimed. Re-check occupancy: another writer may have filled the slot
    // between our probe and the claim.
    const std::uint64_t cur = slot.key.load(std::memory_order_relaxed);
    if (expect_empty && cur != kEmptyKey) {
      slot.seq.store(seq + 2, std::memory_order_release);
      return false;
    }
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    slot.value_bits.store(bits, std::memory_order_relaxed);
    slot.key.store(key, std::memory_order_relaxed);
    slot.seq.store(seq + 2, std::memory_order_release);
    return true;
  }

  std::unique_ptr<Shard[]> shards_;
  std::size_t shard_mask_ = 0;
  std::size_t slot_mask_ = 0;
};

}  // namespace ifls

#endif  // IFLS_COMMON_CONCURRENT_CACHE_H_
