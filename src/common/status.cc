#include "src/common/status.h"

#include <cstdio>
#include <cstdlib>

namespace ifls {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void DieOnBadResultAccess(const Status& status) {
  std::fprintf(stderr, "Fatal: accessed value of errored Result: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace ifls
