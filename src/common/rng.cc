#include "src/common/rng.h"

#include <cmath>
#include <numbers>

#include "src/common/logging.h"

namespace ifls {
namespace {

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
  // All-zero state would be a fixed point of xoshiro; SplitMix64 cannot
  // produce four zeros from any seed, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  IFLS_CHECK(bound > 0);
  // Rejection sampling over the largest multiple of bound.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  IFLS_CHECK(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 2^64 range (lo = INT64_MIN, hi = INT64_MAX).
  if (span == 0) return static_cast<std::int64_t>(Next());
  return lo + static_cast<std::int64_t>(NextBounded(span));
}

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n,
                                                       std::size_t k) {
  IFLS_CHECK(k <= n) << "sample size " << k << " exceeds population " << n;
  // Partial Fisher-Yates over an index vector: O(n) setup, O(k) swaps.
  std::vector<std::size_t> indices(n);
  for (std::size_t i = 0; i < n; ++i) indices[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + static_cast<std::size_t>(NextBounded(n - i));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

}  // namespace ifls
