#ifndef IFLS_COMMON_STATUS_H_
#define IFLS_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace ifls {

/// Error categories used across the library. Mirrors the Arrow/RocksDB idiom:
/// recoverable failures travel as Status values, never as exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIOError,
  kAlreadyExists,
  kUnimplemented,
  /// Transient overload: the caller may retry later (serving backpressure).
  kUnavailable,
  /// The request's deadline passed before the work could run.
  kDeadlineExceeded,
};

/// Returns a stable human-readable name for a status code ("InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Value-semantic success/error carrier. Ok statuses are cheap (no message
/// allocation). Non-ok statuses carry a code plus a message describing the
/// failure site.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Status-or-value, the return type of fallible factories. Holds either a
/// value of T or a non-ok Status; accessing the wrong alternative aborts.
template <typename T>
class Result {
 public:
  /// Implicit from value: `return some_t;` inside a Result-returning function.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status. Constructing from an OK status is a bug and
  /// is converted to an Internal error so it surfaces loudly.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Precondition: ok(). Aborts otherwise.
  const T& value() const& {
    AbortIfNotOk();
    return *value_;
  }
  T& value() & {
    AbortIfNotOk();
    return *value_;
  }
  T&& value() && {
    AbortIfNotOk();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Moves the value out, or returns `alt` when holding an error.
  T ValueOr(T alt) && { return ok() ? std::move(*value_) : std::move(alt); }

 private:
  void AbortIfNotOk() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void DieOnBadResultAccess(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfNotOk() const {
  if (!ok()) internal::DieOnBadResultAccess(status_);
}

/// Propagates a non-ok Status out of the enclosing function.
#define IFLS_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::ifls::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                   \
  } while (false)

#define IFLS_CONCAT_IMPL(x, y) x##y
#define IFLS_CONCAT(x, y) IFLS_CONCAT_IMPL(x, y)

/// Unwraps a Result into `lhs`, propagating the error status on failure.
#define IFLS_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  IFLS_ASSIGN_OR_RETURN_IMPL(IFLS_CONCAT(_result_, __LINE__), lhs, \
                             rexpr)

#define IFLS_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                               \
  if (!result_name.ok()) return result_name.status();       \
  lhs = std::move(result_name).value()

}  // namespace ifls

#endif  // IFLS_COMMON_STATUS_H_
