#include "src/common/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <utility>

#include "src/common/memory_tracker.h"
#include "src/common/metrics_registry.h"

namespace ifls {
namespace {

std::atomic<std::int64_t> g_total_mapped_bytes{0};

/// The registry-owned gauge mirrors the atomic so fleet dashboards see the
/// same number eviction decisions exclude from the heap budget.
void PublishMappedBytes() {
  MetricsRegistry::Global()
      .GetGauge("ifls_mapped_bytes")
      ->Set(static_cast<double>(
          g_total_mapped_bytes.load(std::memory_order_relaxed)));
}

void ChargeMappedBytes(std::int64_t bytes) {
  g_total_mapped_bytes.fetch_add(bytes, std::memory_order_relaxed);
  if (MemoryTracker* t = ActiveMemoryTracker(); t != nullptr) {
    t->ChargeMapped(bytes);
  }
  PublishMappedBytes();
}

void ReleaseMappedBytes(std::int64_t bytes) {
  g_total_mapped_bytes.fetch_sub(bytes, std::memory_order_relaxed);
  if (MemoryTracker* t = ActiveMemoryTracker(); t != nullptr) {
    t->ReleaseMapped(bytes);
  }
  PublishMappedBytes();
}

}  // namespace

std::int64_t TotalMappedBytes() {
  return g_total_mapped_bytes.load(std::memory_order_relaxed);
}

Result<MappedFile> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot open '" + path +
                           "' for mapping: " + std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError("cannot stat '" + path +
                           "': " + std::strerror(err));
  }
  MappedFile file;
  file.path_ = path;
  file.size_ = static_cast<std::size_t>(st.st_size);
  if (file.size_ > 0) {
    void* addr = ::mmap(nullptr, file.size_, PROT_READ, MAP_SHARED, fd, 0);
    if (addr == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      return Status::IOError("cannot mmap '" + path +
                             "': " + std::strerror(err));
    }
    file.data_ = static_cast<const std::byte*>(addr);
    ChargeMappedBytes(static_cast<std::int64_t>(file.size_));
  }
  // The mapping keeps the pages referenced; the descriptor is not needed.
  ::close(fd);
  return file;
}

MappedFile::~MappedFile() { Unmap(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_), size_(other.size_), path_(std::move(other.path_)) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this == &other) return *this;
  Unmap();
  data_ = other.data_;
  size_ = other.size_;
  path_ = std::move(other.path_);
  other.data_ = nullptr;
  other.size_ = 0;
  return *this;
}

void MappedFile::Unmap() {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
    ReleaseMappedBytes(static_cast<std::int64_t>(size_));
    data_ = nullptr;
    size_ = 0;
  }
}

}  // namespace ifls
