#include "src/common/metrics_registry.h"

#include <cstdio>
#include <ostream>
#include <sstream>

#include "src/common/logging.h"

namespace ifls {
namespace {

const char* TypeName(int type) {
  switch (type) {
    case 0:
      return "counter";
    case 1:
      return "gauge";
    default:
      return "histogram";
  }
}

/// "name", "name{labels}" or "name_bucket{labels,le=\"x\"}".
void WriteSeriesName(std::ostream& out, const std::string& name,
                     const char* suffix, const std::string& labels,
                     const char* extra_label) {
  out << name << suffix;
  if (labels.empty() && extra_label == nullptr) return;
  out << '{' << labels;
  if (extra_label != nullptr) {
    if (!labels.empty()) out << ',';
    out << extra_label;
  }
  out << '}';
}

void WriteDouble(std::ostream& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out << buf;
}

}  // namespace

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked like TraceRecorder: instruments may be touched from exiting
  // threads during static destruction.
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

MetricsRegistry::Series* MetricsRegistry::Insert(const std::string& name,
                                                 const std::string& labels,
                                                 MetricType type) {
  Series& series = families_[name][labels];
  if (series.counter || series.gauge || series.histogram ||
      series.counter_fn || series.gauge_fn || series.histogram_ref) {
    IFLS_CHECK(series.type == type)
        << "metric " << name << " re-registered with a different type";
  }
  series.type = type;
  return &series;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Series* series = Insert(name, labels, MetricType::kCounter);
  if (!series->counter) series->counter = std::make_unique<Counter>();
  return series->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Series* series = Insert(name, labels, MetricType::kGauge);
  if (!series->gauge) series->gauge = std::make_unique<Gauge>();
  return series->gauge.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name,
                                                const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Series* series = Insert(name, labels, MetricType::kHistogram);
  if (!series->histogram) {
    series->histogram = std::make_unique<LatencyHistogram>();
  }
  return series->histogram.get();
}

MetricsRegistry::Registration& MetricsRegistry::Registration::operator=(
    Registration&& other) noexcept {
  if (this != &other) {
    Reset();
    registry_ = other.registry_;
    id_ = other.id_;
    other.registry_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

void MetricsRegistry::Registration::Reset() {
  if (registry_ != nullptr && id_ != 0) {
    registry_->Unregister(id_);
  }
  registry_ = nullptr;
  id_ = 0;
}

MetricsRegistry::Registration MetricsRegistry::RegisterCallbackCounter(
    const std::string& name, const std::string& labels,
    std::function<std::uint64_t()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  Series* series = Insert(name, labels, MetricType::kCounter);
  series->counter_fn = std::move(fn);
  series->registration_id = next_registration_id_++;
  return Registration(this, series->registration_id);
}

MetricsRegistry::Registration MetricsRegistry::RegisterCallbackGauge(
    const std::string& name, const std::string& labels,
    std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  Series* series = Insert(name, labels, MetricType::kGauge);
  series->gauge_fn = std::move(fn);
  series->registration_id = next_registration_id_++;
  return Registration(this, series->registration_id);
}

MetricsRegistry::Registration MetricsRegistry::RegisterCallbackHistogram(
    const std::string& name, const std::string& labels,
    const LatencyHistogram* histogram) {
  std::lock_guard<std::mutex> lock(mu_);
  Series* series = Insert(name, labels, MetricType::kHistogram);
  series->histogram_ref = histogram;
  series->registration_id = next_registration_id_++;
  return Registration(this, series->registration_id);
}

void MetricsRegistry::Unregister(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto family = families_.begin(); family != families_.end();) {
    auto& by_labels = family->second;
    for (auto it = by_labels.begin(); it != by_labels.end();) {
      if (it->second.registration_id == id) {
        it = by_labels.erase(it);
      } else {
        ++it;
      }
    }
    if (by_labels.empty()) {
      family = families_.erase(family);
    } else {
      ++family;
    }
  }
}

void MetricsRegistry::DumpPrometheusText(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, by_labels] : families_) {
    if (by_labels.empty()) continue;
    out << "# TYPE " << name << ' '
        << TypeName(static_cast<int>(by_labels.begin()->second.type)) << '\n';
    for (const auto& [labels, series] : by_labels) {
      switch (series.type) {
        case MetricType::kCounter: {
          const std::uint64_t v = series.counter_fn ? series.counter_fn()
                                  : series.counter  ? series.counter->value()
                                                    : 0;
          WriteSeriesName(out, name, "", labels, nullptr);
          out << ' ' << v << '\n';
          break;
        }
        case MetricType::kGauge: {
          const double v = series.gauge_fn ? series.gauge_fn()
                           : series.gauge ? series.gauge->value()
                                          : 0.0;
          WriteSeriesName(out, name, "", labels, nullptr);
          out << ' ';
          WriteDouble(out, v);
          out << '\n';
          break;
        }
        case MetricType::kHistogram: {
          const LatencyHistogram* h = series.histogram_ref != nullptr
                                          ? series.histogram_ref
                                          : series.histogram.get();
          if (h == nullptr) break;
          std::uint64_t cumulative = 0;
          for (int b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
            cumulative += h->bucket_count(b);
            char le[48];
            std::snprintf(le, sizeof(le), "le=\"%.9g\"",
                          LatencyHistogram::BucketUpperBoundSeconds(b));
            WriteSeriesName(out, name, "_bucket", labels, le);
            out << ' ' << cumulative << '\n';
          }
          WriteSeriesName(out, name, "_bucket", labels, "le=\"+Inf\"");
          out << ' ' << h->count() << '\n';
          WriteSeriesName(out, name, "_sum", labels, nullptr);
          out << ' ';
          WriteDouble(out, h->total_seconds());
          out << '\n';
          WriteSeriesName(out, name, "_count", labels, nullptr);
          out << ' ' << h->count() << '\n';
          break;
        }
      }
    }
  }
}

std::string DumpMetricsText() {
  std::ostringstream out;
  MetricsRegistry::Global().DumpPrometheusText(out);
  return out.str();
}

}  // namespace ifls
