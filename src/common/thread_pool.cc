#include "src/common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

namespace ifls {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {
  if (num_threads_ <= 1) return;
  workers_.reserve(static_cast<std::size_t>(num_threads_));
  for (int i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  all_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // The counter lives on the heap: Wait() only guarantees the loop bodies
  // have run, while a worker that lost the final claim race may still touch
  // the counter after the last body returns.
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  auto drain = [next, n, &fn] {
    for (std::size_t i = next->fetch_add(1); i < n; i = next->fetch_add(1)) {
      fn(i);
    }
  };
  const std::size_t lanes =
      std::min(n, static_cast<std::size_t>(num_threads_));
  for (std::size_t t = 1; t < lanes; ++t) Submit(drain);
  drain();  // the calling thread is one of the lanes
  Wait();
}

int ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace ifls
