#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace ifls {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

/// Built-in destination: one line, one fputs, flushed per message.
class StderrSink : public LogSink {
 public:
  void Write(LogLevel /*level*/, const std::string& line) override {
    std::fputs(line.c_str(), stderr);
    std::fputc('\n', stderr);
  }
};

/// Emission mutex: guards the sink pointer and every Write() call, so a
/// message is an atomic unit and SwapLogSink never races an in-flight
/// emission. Function-local statics so logging works during static init.
std::mutex& SinkMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

LogSink*& SinkSlot() {
  static LogSink* sink = nullptr;  // null = default stderr sink
  return sink;
}

StderrSink& DefaultSink() {
  static StderrSink* sink = new StderrSink;
  return *sink;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

LogSink* SwapLogSink(LogSink* sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  LogSink* previous = SinkSlot();
  SinkSlot() = sink;
  return previous;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >=
          g_min_level.load(std::memory_order_relaxed) ||
      level_ == LogLevel::kFatal) {
    const std::string line = stream_.str();
    std::lock_guard<std::mutex> lock(SinkMutex());
    LogSink* sink = SinkSlot();
    (sink != nullptr ? *sink : static_cast<LogSink&>(DefaultSink()))
        .Write(level_, line);
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace ifls
