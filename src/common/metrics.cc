#include "src/common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ifls {
namespace {

/// Bucket index of a sample, clamped into [0, kNumBuckets).
int BucketOf(double seconds) {
  const double us = seconds * 1e6;
  if (us < 1.0) return 0;
  int bucket = 0;
  double bound = 2.0;  // upper bound of bucket 0 is 2^1 us
  while (us >= bound && bucket + 1 < LatencyHistogram::kNumBuckets) {
    bound *= 2.0;
    ++bucket;
  }
  return bucket;
}

}  // namespace

void LatencyHistogram::Record(double seconds) {
  if (!(seconds >= 0.0)) seconds = 0.0;  // NaN/negative clock glitches
  buckets_[static_cast<std::size_t>(BucketOf(seconds))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_nanos_.fetch_add(static_cast<std::uint64_t>(seconds * 1e9),
                         std::memory_order_relaxed);
}

double LatencyHistogram::total_seconds() const {
  return static_cast<double>(total_nanos_.load(std::memory_order_relaxed)) *
         1e-9;
}

double LatencyHistogram::MeanSeconds() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : total_seconds() / static_cast<double>(n);
}

double LatencyHistogram::PercentileSeconds(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  // Rank of the requested sample, 1-based, ceil(q * n) with a floor of 1.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n))));
  std::uint64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    seen += buckets_[static_cast<std::size_t>(b)].load(
        std::memory_order_relaxed);
    if (seen >= rank) {
      return std::ldexp(1.0, b + 1) * 1e-6;  // bucket upper bound, seconds
    }
  }
  return std::ldexp(1.0, kNumBuckets) * 1e-6;
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  total_nanos_.store(0, std::memory_order_relaxed);
}

std::string LatencyHistogram::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.1fus p50=%.1fus p99=%.1fus",
                static_cast<unsigned long long>(count()),
                MeanSeconds() * 1e6, PercentileSeconds(0.5) * 1e6,
                PercentileSeconds(0.99) * 1e6);
  return buf;
}

}  // namespace ifls
