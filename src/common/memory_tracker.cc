#include "src/common/memory_tracker.h"

namespace ifls {
namespace {

thread_local MemoryTracker* g_active_tracker = nullptr;

}  // namespace

MemoryTracker* ActiveMemoryTracker() { return g_active_tracker; }

ScopedMemoryTracking::ScopedMemoryTracking(MemoryTracker* tracker)
    : previous_(g_active_tracker) {
  g_active_tracker = tracker;
}

ScopedMemoryTracking::~ScopedMemoryTracking() {
  g_active_tracker = previous_;
}

}  // namespace ifls
