#ifndef IFLS_COMMON_METRICS_REGISTRY_H_
#define IFLS_COMMON_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "src/common/metrics.h"

namespace ifls {

/// Monotonic counter: Add() is one relaxed fetch_add, safe from any thread.
class Counter {
 public:
  void Add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins gauge.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Central registry of named metrics with Prometheus-style text exposition
/// (DESIGN.md §10). Two registration styles:
///
///  - Registry-owned instruments: GetCounter/GetGauge/GetHistogram create on
///    first use and return stable pointers, never removed. For process-wide
///    series (e.g. the ifls_query_* solver-work rollups).
///  - Callback instruments: sampled at exposition time from live objects
///    (e.g. an IflsService's queue depth). The returned Registration handle
///    removes the series on destruction, so a service can register gauges
///    that read `this` and tear them down before dying.
///
/// Naming scheme: `ifls_<layer>_<what>[_total]` with snake_case names and
/// optional label sets preformatted as `key="value"[,key="value"...]`.
/// Series with the same name must share one metric type; per-instance series
/// differ in labels only (e.g. `ifls_service_completed_total{instance="3"}`).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name, const std::string& labels = "");
  Gauge* GetGauge(const std::string& name, const std::string& labels = "");
  LatencyHistogram* GetHistogram(const std::string& name,
                                 const std::string& labels = "");

  /// Move-only RAII handle for callback series; destruction (or Reset())
  /// removes the series from the registry. After Reset() returns the
  /// callback is guaranteed not to be running and never runs again.
  class Registration {
   public:
    Registration() = default;
    Registration(Registration&& other) noexcept { *this = std::move(other); }
    Registration& operator=(Registration&& other) noexcept;
    ~Registration() { Reset(); }
    void Reset();

    Registration(const Registration&) = delete;
    Registration& operator=(const Registration&) = delete;

   private:
    friend class MetricsRegistry;
    Registration(MetricsRegistry* registry, std::uint64_t id)
        : registry_(registry), id_(id) {}
    MetricsRegistry* registry_ = nullptr;
    std::uint64_t id_ = 0;
  };

  Registration RegisterCallbackCounter(const std::string& name,
                                       const std::string& labels,
                                       std::function<std::uint64_t()> fn);
  Registration RegisterCallbackGauge(const std::string& name,
                                     const std::string& labels,
                                     std::function<double()> fn);
  /// Exposes an externally-owned histogram; `histogram` must outlive the
  /// Registration.
  Registration RegisterCallbackHistogram(const std::string& name,
                                         const std::string& labels,
                                         const LatencyHistogram* histogram);

  /// Prometheus text exposition: one `# TYPE` line per metric family, then
  /// one sample line per series (histograms expand to cumulative `le`
  /// buckets plus `_sum` and `_count`).
  void DumpPrometheusText(std::ostream& out) const;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  enum class MetricType { kCounter, kGauge, kHistogram };

  struct Series {
    MetricType type = MetricType::kCounter;
    std::uint64_t registration_id = 0;  // 0 = registry-owned
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
    std::function<std::uint64_t()> counter_fn;
    std::function<double()> gauge_fn;
    const LatencyHistogram* histogram_ref = nullptr;
  };

  MetricsRegistry() = default;

  Series* Insert(const std::string& name, const std::string& labels,
                 MetricType type);
  void Unregister(std::uint64_t id);

  /// Held across the whole exposition pass, so Registration::Reset() cannot
  /// return while a callback is mid-flight.
  mutable std::mutex mu_;
  /// name -> labels -> series; the map nesting yields the family grouping
  /// the exposition format wants.
  std::map<std::string, std::map<std::string, Series>> families_;
  std::uint64_t next_registration_id_ = 1;
};

/// The Prometheus exposition of the global registry as a string — the
/// admin/debug surface used by `ifls_cli trace --metrics` and tests.
std::string DumpMetricsText();

}  // namespace ifls

#endif  // IFLS_COMMON_METRICS_REGISTRY_H_
