#ifndef IFLS_COMMON_ARENA_H_
#define IFLS_COMMON_ARENA_H_

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "src/common/logging.h"
#include "src/common/memory_tracker.h"
#include "src/common/status.h"

namespace ifls {

/// Append-only contiguous buffer backing the flat index layouts. One arena
/// holds the concatenated payload of many owners (e.g. every VIP-tree node's
/// distance matrix) so a traversal touches one allocation instead of chasing
/// per-node heap pointers. Owners address their slice by offset, or — because
/// the protocol below guarantees pointer stability — by raw pointer/span.
///
/// Two backing modes:
///
///  * Owned (default): a heap vector. Call Reserve() once with the exact
///    total before any Append/Allocate. Appends past the reserved capacity
///    are a programming error (IFLS_CHECK), never a silent reallocation, so
///    spans handed out during the fill can never dangle. Memory is charged
///    to the thread's active MemoryTracker (via TrackingAllocator) at
///    Reserve time.
///
///  * Mapped (AdoptMapped): a read-only view into externally-owned memory,
///    typically an mmap-ed snapshot section. The same layout pass that fills
///    an owned arena *replays* over a mapped one: Reserve() validates the
///    computed total against the mapped element count, Allocate() advances a
///    cursor without writing, and Append/AppendRange verify that the mapped
///    content equals what the layout would have written. Replay mismatches
///    are data corruption, not programming errors, so they set a sticky
///    error surfaced through BackingStatus() instead of aborting — the
///    loader converts it into a proper Status. mutable_data() is forbidden
///    in mapped mode. Mapped bytes are never part of MemoryFootprintBytes()
///    (they are page-cache bytes, reported separately via MappedBytes()).
template <typename T>
class ArenaBuffer {
 public:
  ArenaBuffer() = default;

  /// Owned mode: allocates exactly `total` elements worth of capacity. Must
  /// be called before the first Append/Allocate and at most once per arena
  /// lifetime (Clear() re-arms it). Mapped mode: validates that the layout's
  /// computed total matches the mapped section size (sticky error if not).
  void Reserve(std::size_t total) {
    if (mapped_data_ != nullptr) {
      if (total != mapped_size_) {
        SetError("mapped section holds " + std::to_string(mapped_size_) +
                 " elements but the layout expects " + std::to_string(total));
      }
      return;
    }
    IFLS_CHECK(data_.capacity() == 0 && "ArenaBuffer::Reserve called twice");
    data_.reserve(total);
  }

  /// Switches this (unused) arena to mapped mode over `[data, data+count)`.
  /// The backing memory is owned elsewhere (e.g. a MappedFile the index
  /// keeps alive) and must outlive the arena.
  void AdoptMapped(const T* data, std::size_t count) {
    IFLS_CHECK(mapped_data_ == nullptr && data_.capacity() == 0 &&
               "ArenaBuffer::AdoptMapped on a used arena");
    mapped_data_ = data;
    mapped_size_ = count;
    cursor_ = 0;
    error_.clear();
  }

  bool is_mapped() const { return mapped_data_ != nullptr; }

  /// Owned: appends `count` copies of `value`; returns the offset of the
  /// first one. Mapped: advances the cursor past `count` already-present
  /// elements without inspecting them (payload slots carry real data, not
  /// the fill value) and returns their offset.
  std::size_t Allocate(std::size_t count, const T& value) {
    if (mapped_data_ != nullptr) return AdvanceMapped(count);
    IFLS_CHECK(data_.size() + count <= data_.capacity() &&
               "ArenaBuffer overflow: Reserve() total was too small");
    const std::size_t offset = data_.size();
    data_.insert(data_.end(), count, value);
    return offset;
  }

  /// Appends a single element; returns its offset.
  std::size_t Append(const T& value) {
    const T* first = &value;
    return AppendRange(first, first + 1);
  }

  /// Owned: appends a range; returns the offset of the first copied element.
  /// Mapped: verifies the mapped content at the cursor equals the range
  /// (sticky error on mismatch) and advances past it.
  template <typename It>
  std::size_t AppendRange(It first, It last) {
    const std::size_t count = static_cast<std::size_t>(last - first);
    if (mapped_data_ != nullptr) {
      const std::size_t offset = AdvanceMapped(count);
      if (error_.empty() &&
          !std::equal(first, last, mapped_data_ + offset)) {
        SetError("mapped content does not match the derived layout at "
                 "offset " +
                 std::to_string(offset));
      }
      return offset;
    }
    IFLS_CHECK(data_.size() + count <= data_.capacity() &&
               "ArenaBuffer overflow: Reserve() total was too small");
    const std::size_t offset = data_.size();
    data_.insert(data_.end(), first, last);
    return offset;
  }

  const T* data() const {
    return mapped_data_ != nullptr ? mapped_data_ : data_.data();
  }
  T* mutable_data() {
    IFLS_CHECK(mapped_data_ == nullptr &&
               "ArenaBuffer::mutable_data on a mapped (read-only) arena");
    return data_.data();
  }

  std::size_t size() const {
    return mapped_data_ != nullptr ? cursor_ : data_.size();
  }
  std::size_t capacity() const {
    return mapped_data_ != nullptr ? mapped_size_ : data_.capacity();
  }
  bool empty() const { return size() == 0; }

  const T& operator[](std::size_t i) const { return data()[i]; }
  T& operator[](std::size_t i) { return mutable_data()[i]; }

  /// Fraction of reserved capacity actually filled (1.0 when Reserve was
  /// exact, which the flat index layouts guarantee).
  double utilization() const {
    return capacity() == 0 ? 1.0
                           : static_cast<double>(size()) /
                                 static_cast<double>(capacity());
  }

  /// Resident heap bytes held by this arena. Zero in mapped mode: the bytes
  /// belong to the page cache and are reported via MappedBytes() instead,
  /// so eviction budgets see only what dropping the arena actually frees.
  std::size_t MemoryFootprintBytes() const {
    return data_.capacity() * sizeof(T);
  }

  /// File-mapped bytes viewed by this arena (0 in owned mode).
  std::size_t MappedBytes() const { return mapped_size_ * sizeof(T); }

  /// OK, or the first replay mismatch recorded in mapped mode. Loaders must
  /// check this after the layout pass: a non-OK arena means the snapshot's
  /// descriptors and payload disagree (corruption), and any spans handed
  /// out describe the file's layout, not a trustworthy index.
  Status BackingStatus() const {
    return error_.empty() ? Status::OK() : Status::InvalidArgument(error_);
  }

  void Clear() {
    data_.clear();
    data_.shrink_to_fit();
    mapped_data_ = nullptr;
    mapped_size_ = 0;
    cursor_ = 0;
    error_.clear();
  }

 private:
  std::size_t AdvanceMapped(std::size_t count) {
    const std::size_t offset = cursor_;
    if (mapped_size_ - cursor_ < count) {
      SetError("layout overruns the mapped section (cursor " +
               std::to_string(cursor_) + " + " + std::to_string(count) +
               " > " + std::to_string(mapped_size_) + ")");
      cursor_ = mapped_size_;
      // Clamp so the returned slice stays inside the mapping; the sticky
      // error invalidates the whole load anyway.
      return mapped_size_ >= count ? mapped_size_ - count : 0;
    }
    cursor_ += count;
    return offset;
  }

  void SetError(const std::string& message) {
    if (error_.empty()) error_ = "ArenaBuffer: " + message;
  }

  std::vector<T, TrackingAllocator<T>> data_;

  // Mapped-mode state. `mapped_data_` doubles as the mode discriminant.
  const T* mapped_data_ = nullptr;
  std::size_t mapped_size_ = 0;
  std::size_t cursor_ = 0;
  std::string error_;
};

}  // namespace ifls

#endif  // IFLS_COMMON_ARENA_H_
