#ifndef IFLS_COMMON_ARENA_H_
#define IFLS_COMMON_ARENA_H_

#include <cstddef>
#include <vector>

#include "src/common/logging.h"
#include "src/common/memory_tracker.h"

namespace ifls {

/// Append-only contiguous buffer backing the flat index layouts. One arena
/// holds the concatenated payload of many owners (e.g. every VIP-tree node's
/// distance matrix) so a traversal touches one allocation instead of chasing
/// per-node heap pointers. Owners address their slice by offset, or — because
/// the protocol below guarantees pointer stability — by raw pointer/span.
///
/// Protocol: call Reserve() once with the exact total before any Append/
/// Allocate. Appends past the reserved capacity are a programming error
/// (IFLS_CHECK), never a silent reallocation, so spans handed out during the
/// fill can never dangle. Memory is charged to the thread's active
/// MemoryTracker (via TrackingAllocator) at Reserve time.
template <typename T>
class ArenaBuffer {
 public:
  ArenaBuffer() = default;

  /// Allocates exactly `total` elements worth of capacity. Must be called
  /// before the first Append/Allocate and at most once per arena lifetime
  /// (Clear() re-arms it).
  void Reserve(std::size_t total) {
    IFLS_CHECK(data_.capacity() == 0 && "ArenaBuffer::Reserve called twice");
    data_.reserve(total);
  }

  /// Appends `count` copies of `value`; returns the offset of the first one.
  std::size_t Allocate(std::size_t count, const T& value) {
    IFLS_CHECK(data_.size() + count <= data_.capacity() &&
               "ArenaBuffer overflow: Reserve() total was too small");
    const std::size_t offset = data_.size();
    data_.insert(data_.end(), count, value);
    return offset;
  }

  /// Appends a single element; returns its offset.
  std::size_t Append(const T& value) { return Allocate(1, value); }

  /// Appends a range; returns the offset of the first copied element.
  template <typename It>
  std::size_t AppendRange(It first, It last) {
    const std::size_t count = static_cast<std::size_t>(last - first);
    IFLS_CHECK(data_.size() + count <= data_.capacity() &&
               "ArenaBuffer overflow: Reserve() total was too small");
    const std::size_t offset = data_.size();
    data_.insert(data_.end(), first, last);
    return offset;
  }

  const T* data() const { return data_.data(); }
  T* mutable_data() { return data_.data(); }

  std::size_t size() const { return data_.size(); }
  std::size_t capacity() const { return data_.capacity(); }
  bool empty() const { return data_.empty(); }

  const T& operator[](std::size_t i) const { return data_[i]; }
  T& operator[](std::size_t i) { return data_[i]; }

  /// Fraction of reserved capacity actually filled (1.0 when Reserve was
  /// exact, which the flat index layouts guarantee).
  double utilization() const {
    return data_.capacity() == 0
               ? 1.0
               : static_cast<double>(data_.size()) /
                     static_cast<double>(data_.capacity());
  }

  std::size_t MemoryFootprintBytes() const {
    return data_.capacity() * sizeof(T);
  }

  void Clear() {
    data_.clear();
    data_.shrink_to_fit();
  }

 private:
  std::vector<T, TrackingAllocator<T>> data_;
};

}  // namespace ifls

#endif  // IFLS_COMMON_ARENA_H_
