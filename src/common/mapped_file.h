#ifndef IFLS_COMMON_MAPPED_FILE_H_
#define IFLS_COMMON_MAPPED_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace ifls {

/// A read-only, shared, page-aligned memory mapping of a whole file. The
/// backing bytes belong to the kernel page cache: mapping costs no resident
/// heap, dropping the mapping keeps the pages warm for the next map, and two
/// processes mapping the same snapshot share physical memory. This is the
/// backing store for mapped ArenaBuffers (zero-copy index loading).
///
/// Mapped bytes are charged to the process-wide `ifls_mapped_bytes` gauge
/// and to the thread's active MemoryTracker mapped-bytes counter (never the
/// heap peak) for the mapping's lifetime.
class MappedFile {
 public:
  /// Maps `path` read-only in full. Fails with IOError when the file cannot
  /// be opened, stat-ed or mapped; empty files map successfully with
  /// size() == 0.
  static Result<MappedFile> Open(const std::string& path);

  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const std::byte* data() const { return data_; }
  std::size_t size() const { return size_; }
  const std::string& path() const { return path_; }

  /// Typed view at a byte offset. The caller is responsible for bounds and
  /// alignment (v3 snapshot sections are page-aligned, which satisfies any
  /// scalar T).
  template <typename T>
  const T* ViewAt(std::size_t byte_offset) const {
    return reinterpret_cast<const T*>(data_ + byte_offset);
  }

 private:
  void Unmap();

  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  std::string path_;
};

/// Sum of all live MappedFile sizes in this process (the value behind the
/// `ifls_mapped_bytes` gauge).
std::int64_t TotalMappedBytes();

}  // namespace ifls

#endif  // IFLS_COMMON_MAPPED_FILE_H_
