#ifndef IFLS_COMMON_STOPWATCH_H_
#define IFLS_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace ifls {

/// Monotonic wall-clock stopwatch used by the bench harness.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Restart, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  std::int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ifls

#endif  // IFLS_COMMON_STOPWATCH_H_
