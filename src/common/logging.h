#ifndef IFLS_COMMON_LOGGING_H_
#define IFLS_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace ifls {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Global minimum level; messages below it are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Destination for fully formatted log lines. Write() is always invoked
/// under the logger's emission mutex, so implementations need no locking of
/// their own and lines from concurrent threads never interleave.
class LogSink {
 public:
  virtual ~LogSink() = default;
  /// `line` is the complete "[LEVEL file:line] message" text, no newline.
  virtual void Write(LogLevel level, const std::string& line) = 0;
};

/// Installs `sink` as the global destination and returns the previous one
/// (nullptr means the default stderr sink). The swap and every in-flight
/// emission are serialized on one mutex, so replacing the sink while other
/// threads log is safe; the caller owns both sinks' lifetimes and must keep
/// the installed sink alive until it is swapped back out.
LogSink* SwapLogSink(LogSink* sink);

namespace internal {

/// Stream-style log message. Formats into a thread-private buffer, then
/// emits the whole line in one critical section on destruction (so worker
/// and compactor threads logging concurrently can never tear or interleave
/// a line); aborts the process for kFatal. Used through the IFLS_LOG /
/// IFLS_CHECK macros only.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define IFLS_LOG_INTERNAL(level) \
  ::ifls::internal::LogMessage(level, __FILE__, __LINE__).stream()

/// IFLS_LOG(INFO) << "message"; levels: DEBUG, INFO, WARNING, ERROR, FATAL.
#define IFLS_LOG(severity) IFLS_LOG_##severity

#define IFLS_LOG_DEBUG IFLS_LOG_INTERNAL(::ifls::LogLevel::kDebug)
#define IFLS_LOG_INFO IFLS_LOG_INTERNAL(::ifls::LogLevel::kInfo)
#define IFLS_LOG_WARNING IFLS_LOG_INTERNAL(::ifls::LogLevel::kWarning)
#define IFLS_LOG_ERROR IFLS_LOG_INTERNAL(::ifls::LogLevel::kError)
#define IFLS_LOG_FATAL IFLS_LOG_INTERNAL(::ifls::LogLevel::kFatal)

/// Invariant check: logs the failed condition and aborts. Enabled in all
/// build types — index/algorithm invariants guard correctness, not speed.
#define IFLS_CHECK(condition)                                      \
  if (!(condition))                                                \
  IFLS_LOG(FATAL) << "Check failed: " #condition " "

#define IFLS_CHECK_OK(expr)                                        \
  do {                                                             \
    ::ifls::Status _st = (expr);                                   \
    IFLS_CHECK(_st.ok()) << _st.ToString();                        \
  } while (false)

/// Debug-only check, compiled out in NDEBUG builds.
#ifdef NDEBUG
#define IFLS_DCHECK(condition) \
  while (false) IFLS_CHECK(condition)
#else
#define IFLS_DCHECK(condition) IFLS_CHECK(condition)
#endif

}  // namespace ifls

#endif  // IFLS_COMMON_LOGGING_H_
