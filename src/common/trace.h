#ifndef IFLS_COMMON_TRACE_H_
#define IFLS_COMMON_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"

namespace ifls {

/// Span categories, one per layer of the stack (DESIGN.md §10). The category
/// becomes the `cat` field of the exported Chrome trace events, so Perfetto
/// can filter "show me only oracle work" across all threads.
enum class TraceCategory : std::uint8_t {
  kSolver = 0,      // solver phases (efficient / baseline / extensions)
  kOracle = 1,      // distance oracle work (NN search, door composition)
  kCache = 2,       // door-distance cache fills
  kService = 3,     // serving front (queue wait, snapshot pin, solve)
  kCompaction = 4,  // background snapshot compaction
};
inline constexpr int kNumTraceCategories = 5;

const char* TraceCategoryName(TraceCategory category);

/// Nanoseconds on the process-wide trace clock: steady_clock relative to a
/// base captured at first use, so exported timestamps start near zero.
std::uint64_t TraceNowNanos();

/// The trace-clock reading for an already-captured steady_clock time point
/// (lets callers that stamped `now()` for other reasons — e.g. admission
/// times — derive retroactive span endpoints without a second clock read).
std::uint64_t TraceNanosFrom(std::chrono::steady_clock::time_point tp);

/// One completed span, as returned by TraceRecorder::Snapshot().
struct TraceEvent {
  /// Statically-allocated name (TraceSpan requires string literals).
  const char* name = nullptr;
  TraceCategory category = TraceCategory::kService;
  /// Dense recorder-assigned id of the recording thread.
  std::uint32_t tid = 0;
  /// Query attribution from the enclosing TraceIdScope; 0 = unattributed.
  std::uint64_t trace_id = 0;
  std::uint64_t start_nanos = 0;
  std::uint64_t end_nanos = 0;
};

namespace trace_internal {

/// Global on/off switch, read with one relaxed load on every TraceSpan
/// construction — the entire cost of the instrumentation when disabled.
extern std::atomic<bool> g_enabled;

/// Per-thread trace attribution installed by TraceIdScope.
struct ThreadTraceState {
  std::uint64_t trace_id = 0;
  /// True when the enclosing query lost the 1-in-N sampling draw: spans on
  /// this thread are skipped until the scope ends.
  bool suppressed = false;
};

ThreadTraceState& ThreadState();

}  // namespace trace_internal

/// True when span recording is globally enabled.
inline bool TraceEnabled() {
  return trace_internal::g_enabled.load(std::memory_order_relaxed);
}

/// Process-wide span recorder (DESIGN.md §10): every thread that records
/// gets its own fixed-capacity ring of seqlock-guarded slots, so the record
/// path never takes a lock and never allocates, and a concurrent exporter
/// can walk all rings without stopping writers — the same idiom as
/// ConcurrentDoorCache. When a ring wraps, the oldest spans are overwritten
/// and counted in dropped_events().
class TraceRecorder {
 public:
  /// Ring capacity per thread. 4096 complete spans cover several queries of
  /// full-detail tracing; older spans fall off the back.
  static constexpr std::size_t kSlotsPerThread = 4096;

  static TraceRecorder& Global();

  /// Turns recording on. `sample_every` controls query sampling: a query
  /// whose TraceIdScope loses the 1-in-N draw records no spans (spans
  /// outside any scope — compaction, admin work — always record while
  /// enabled). 0/1 = record every query. Setting IFLS_TRACE=N in the
  /// environment calls Enable(N) at process start (unset or 0 = off).
  void Enable(std::uint32_t sample_every = 1);
  void Disable();
  bool enabled() const { return TraceEnabled(); }
  std::uint32_t sample_every() const;

  /// Allocates a fresh trace id (1-based, monotonic).
  std::uint64_t NewTraceId();
  /// Whether a query with this id wins the 1-in-N sampling draw.
  bool Sampled(std::uint64_t trace_id) const;

  /// Records one completed span on the calling thread's ring. TraceSpan is
  /// the normal entry; call directly for retroactive spans whose start
  /// predates the call (e.g. queue wait measured at dequeue time).
  void Record(TraceCategory category, const char* name, std::uint64_t trace_id,
              std::uint64_t start_nanos, std::uint64_t end_nanos);

  /// Drops all recorded spans (best-effort while writers are active) and
  /// resets the dropped-span counter.
  void Clear();

  /// All currently-held spans, ordered by (tid, start). Safe to call while
  /// other threads record; concurrently-written slots are skipped.
  std::vector<TraceEvent> Snapshot() const;
  /// Snapshot() filtered to one trace id (slow-query capture).
  std::vector<TraceEvent> SnapshotTrace(std::uint64_t trace_id) const;

  /// Spans lost to ring wrap-around (or buffer reuse) since the last Clear.
  std::uint64_t dropped_events() const;

  /// Process-level metadata stamped into every export's "otherData" block
  /// (Chrome trace viewers show it under "Metadata"). Last write per key
  /// wins. Used for run attribution that is not a span — e.g. the kernel
  /// dispatch layer records the active min-plus backend tier here.
  void SetMetadata(const std::string& key, const std::string& value);

  /// Writes the current snapshot as Chrome trace-event JSON ("traceEvents"
  /// array of balanced B/E pairs, microsecond timestamps, plus the
  /// "otherData" metadata block), loadable in Perfetto / chrome://tracing.
  Status ExportChromeTrace(std::ostream& out) const;
  Status ExportChromeTraceToFile(const std::string& path) const;

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

 private:
  struct ThreadBuffer;

  TraceRecorder();
  ~TraceRecorder();  // never runs: Global() leaks the singleton on purpose

  /// The calling thread's ring, created on first record and returned to a
  /// reuse pool (events intact) when the thread exits.
  ThreadBuffer* LocalBuffer();

  mutable std::mutex registry_mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  /// Export metadata (key -> value), guarded by registry_mu_. A sorted
  /// vector keeps the exported block deterministic.
  std::vector<std::pair<std::string, std::string>> metadata_;
  std::atomic<std::uint64_t> next_trace_id_{1};
  std::atomic<std::uint32_t> sample_every_{1};
  std::atomic<std::uint64_t> dropped_{0};
};

/// RAII span: stamps start at construction, records the completed span into
/// the calling thread's ring at destruction. `name` must be a string
/// literal (or otherwise outlive the recorder's contents). Construction
/// while tracing is disabled costs one relaxed atomic load.
class TraceSpan {
 public:
  TraceSpan(TraceCategory category, const char* name) {
    if (!TraceEnabled()) return;
    const trace_internal::ThreadTraceState& state =
        trace_internal::ThreadState();
    if (state.suppressed) return;
    category_ = category;
    name_ = name;
    trace_id_ = state.trace_id;
    start_nanos_ = TraceNowNanos();
    armed_ = true;
  }

  ~TraceSpan() {
    if (armed_) Finish();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void Finish();

  const char* name_ = nullptr;
  std::uint64_t trace_id_ = 0;
  std::uint64_t start_nanos_ = 0;
  TraceCategory category_ = TraceCategory::kService;
  bool armed_ = false;
};

/// Installs {trace_id, sampling verdict} for the current thread; every
/// TraceSpan constructed underneath inherits the id (and is skipped when the
/// query lost the sampling draw). Restores the previous state on
/// destruction, so scopes nest.
class TraceIdScope {
 public:
  TraceIdScope(std::uint64_t trace_id, bool sampled)
      : previous_(trace_internal::ThreadState()) {
    trace_internal::ThreadTraceState& state = trace_internal::ThreadState();
    state.trace_id = trace_id;
    state.suppressed = !sampled;
  }

  ~TraceIdScope() { trace_internal::ThreadState() = previous_; }

  TraceIdScope(const TraceIdScope&) = delete;
  TraceIdScope& operator=(const TraceIdScope&) = delete;

 private:
  trace_internal::ThreadTraceState previous_;
};

/// Renders `events` (one query's spans, or any Snapshot() slice) as an
/// indented tree, one span per line, nested by containment per thread.
/// Used by the slow-query log; capped at `max_lines` spans.
std::string FormatSpanTree(const std::vector<TraceEvent>& events,
                           std::size_t max_lines = 64);

/// Trace context as it crosses a process boundary (DESIGN.md §15): the wire
/// layer serializes this into the optional frame extension, the server
/// installs it via TraceIdScope so its spans land under the caller's trace
/// id, and the sampling verdict travels with it — the server must never
/// re-roll the 1-in-N draw for a propagated context.
struct TraceContext {
  std::uint64_t trace_id = 0;
  /// Id of the client-side RPC span this request hangs under (the client
  /// uses the RPC's request id). Purely for correlation in ledger entries
  /// and logs; the span recorder itself nests by containment, not by id.
  std::uint64_t parent_span_id = 0;
  bool sampled = false;
  /// Client trace-clock reading when the frame was sent, for debugging
  /// one-way delay once the clock offset is known.
  std::uint64_t client_send_nanos = 0;

  bool valid() const { return trace_id != 0; }
};

/// The calling thread's current trace attribution as a wire-ready context
/// (trace id + sampling verdict from the enclosing TraceIdScope, send
/// timestamp stamped now). `valid()` is false outside any scope.
TraceContext CurrentTraceContext();

/// Stitches a client-side and a server-side Chrome trace export (both
/// produced by ExportChromeTrace) into one Perfetto-loadable timeline:
/// server timestamps are shifted by `server_clock_offset_nanos` (the
/// NTP-style estimate from the ping opcode: client_clock ≈ server_clock +
/// offset), server events are moved to pid 2 (named "ifls_server"; the
/// client keeps pid 1, named "ifls_client"), and the otherData blocks are
/// merged with server keys prefixed "server.". Returns InvalidArgument when
/// either input does not look like this repo's exporter output.
Status MergeChromeTraces(const std::string& client_json,
                         const std::string& server_json,
                         std::int64_t server_clock_offset_nanos,
                         std::string* merged);

}  // namespace ifls

#endif  // IFLS_COMMON_TRACE_H_
