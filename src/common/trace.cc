#include "src/common/trace.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <ostream>

namespace ifls {

namespace trace_internal {

std::atomic<bool> g_enabled{false};

ThreadTraceState& ThreadState() {
  thread_local ThreadTraceState state;
  return state;
}

}  // namespace trace_internal

const char* TraceCategoryName(TraceCategory category) {
  switch (category) {
    case TraceCategory::kSolver:
      return "solver";
    case TraceCategory::kOracle:
      return "oracle";
    case TraceCategory::kCache:
      return "cache";
    case TraceCategory::kService:
      return "service";
    case TraceCategory::kCompaction:
      return "compaction";
  }
  return "unknown";
}

namespace {

std::chrono::steady_clock::time_point TraceClockBase() {
  static const std::chrono::steady_clock::time_point base =
      std::chrono::steady_clock::now();
  return base;
}

/// Opt-in tracing from the environment (same idiom as IFLS_KERNELS):
/// IFLS_TRACE=1 records every query, IFLS_TRACE=N samples 1-in-N, unset/0
/// leaves tracing off. Lets CI rerun existing suites — e.g. the TSan
/// `parallel` label — with the recorder live, without touching the tests.
const bool g_env_enable = [] {
  const char* env = std::getenv("IFLS_TRACE");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "0") == 0) {
    return false;
  }
  char* end = nullptr;
  const unsigned long n = std::strtoul(env, &end, 10);
  TraceRecorder::Global().Enable(
      (end != nullptr && *end == '\0' && n > 0) ? static_cast<std::uint32_t>(n)
                                                : 1);
  return true;
}();

}  // namespace

std::uint64_t TraceNowNanos() {
  return TraceNanosFrom(std::chrono::steady_clock::now());
}

std::uint64_t TraceNanosFrom(std::chrono::steady_clock::time_point tp) {
  const auto delta = tp - TraceClockBase();
  if (delta.count() < 0) return 0;  // tp predates the base capture
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(delta).count());
}

/// One ring of seqlock-guarded span slots, written by exactly one thread at
/// a time and read concurrently by the exporter. Slot protocol (mirrors
/// ConcurrentDoorCache): the writer bumps `seq` to odd (acq_rel RMW, so the
/// payload stores below cannot be hoisted above it), fills the payload with
/// relaxed stores, then publishes by storing the next even value with
/// release order. Readers accept a slot only when `seq` reads even and
/// identical before and after the payload loads.
struct TraceRecorder::ThreadBuffer {
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<const char*> name{nullptr};
    std::atomic<std::uint64_t> trace_id{0};
    std::atomic<std::uint64_t> start_nanos{0};
    std::atomic<std::uint64_t> end_nanos{0};
    std::atomic<std::uint32_t> category{0};
  };

  explicit ThreadBuffer(std::uint32_t tid_in) : tid(tid_in) {}

  const std::uint32_t tid;
  /// True while a live thread owns this ring; cleared at thread exit so a
  /// later thread can adopt it (events are kept until adoption).
  std::atomic<bool> in_use{true};
  /// Total spans ever pushed; slot index is head % kSlotsPerThread.
  std::atomic<std::uint64_t> head{0};
  std::array<Slot, kSlotsPerThread> slots;

  void Push(TraceCategory category, const char* name, std::uint64_t trace_id,
            std::uint64_t start_nanos, std::uint64_t end_nanos) {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    Slot& slot = slots[h % kSlotsPerThread];
    std::uint64_t seq = slot.seq.load(std::memory_order_relaxed);
    // Single writer: the claim CAS cannot fail; acq_rel keeps the payload
    // stores from moving above the odd mark.
    slot.seq.compare_exchange_strong(seq, seq + 1, std::memory_order_acq_rel);
    slot.name.store(name, std::memory_order_relaxed);
    slot.trace_id.store(trace_id, std::memory_order_relaxed);
    slot.start_nanos.store(start_nanos, std::memory_order_relaxed);
    slot.end_nanos.store(end_nanos, std::memory_order_relaxed);
    slot.category.store(static_cast<std::uint32_t>(category),
                        std::memory_order_relaxed);
    slot.seq.store(seq + 2, std::memory_order_release);
    head.store(h + 1, std::memory_order_release);
  }

  /// Seqlock read of one slot; false when a writer was mid-publish.
  bool Read(std::size_t index, TraceEvent* out) const {
    const Slot& slot = slots[index];
    const std::uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
    if (seq_before & 1) return false;
    out->name = slot.name.load(std::memory_order_relaxed);
    out->trace_id = slot.trace_id.load(std::memory_order_relaxed);
    out->start_nanos = slot.start_nanos.load(std::memory_order_relaxed);
    out->end_nanos = slot.end_nanos.load(std::memory_order_relaxed);
    out->category = static_cast<TraceCategory>(
        slot.category.load(std::memory_order_relaxed));
    std::atomic_thread_fence(std::memory_order_acquire);
    const std::uint64_t seq_after = slot.seq.load(std::memory_order_relaxed);
    if (seq_before != seq_after || out->name == nullptr) return false;
    out->tid = tid;
    return true;
  }
};

TraceRecorder::TraceRecorder() = default;
TraceRecorder::~TraceRecorder() = default;

TraceRecorder& TraceRecorder::Global() {
  // Leaked on purpose: threads may still be recording during static
  // destruction, and their thread_local handles outlive function statics.
  static TraceRecorder* instance = new TraceRecorder();
  return *instance;
}

void TraceRecorder::Enable(std::uint32_t sample_every) {
  sample_every_.store(sample_every == 0 ? 1 : sample_every,
                      std::memory_order_relaxed);
  trace_internal::g_enabled.store(true, std::memory_order_release);
}

void TraceRecorder::Disable() {
  trace_internal::g_enabled.store(false, std::memory_order_release);
}

std::uint32_t TraceRecorder::sample_every() const {
  return sample_every_.load(std::memory_order_relaxed);
}

std::uint64_t TraceRecorder::NewTraceId() {
  return next_trace_id_.fetch_add(1, std::memory_order_relaxed);
}

bool TraceRecorder::Sampled(std::uint64_t trace_id) const {
  const std::uint32_t n = sample_every();
  return n <= 1 || trace_id % n == 1;
}

TraceRecorder::ThreadBuffer* TraceRecorder::LocalBuffer() {
  // The handle hands the ring back (events intact) when the thread exits; a
  // later thread adopts the ring and resets it, so the total footprint is
  // bounded by the peak number of concurrently-recording threads.
  struct Handle {
    ThreadBuffer* buffer = nullptr;
    ~Handle() {
      if (buffer != nullptr) {
        buffer->in_use.store(false, std::memory_order_release);
      }
    }
  };
  thread_local Handle handle;
  if (handle.buffer != nullptr) return handle.buffer;

  std::lock_guard<std::mutex> lock(registry_mu_);
  for (auto& buffer : buffers_) {
    if (!buffer->in_use.load(std::memory_order_acquire)) {
      const std::uint64_t stale = buffer->head.load(std::memory_order_relaxed);
      dropped_.fetch_add(std::min<std::uint64_t>(stale, kSlotsPerThread),
                         std::memory_order_relaxed);
      buffer->head.store(0, std::memory_order_relaxed);
      buffer->in_use.store(true, std::memory_order_relaxed);
      handle.buffer = buffer.get();
      return handle.buffer;
    }
  }
  buffers_.push_back(
      std::make_unique<ThreadBuffer>(static_cast<std::uint32_t>(buffers_.size())));
  handle.buffer = buffers_.back().get();
  return handle.buffer;
}

void TraceRecorder::Record(TraceCategory category, const char* name,
                           std::uint64_t trace_id, std::uint64_t start_nanos,
                           std::uint64_t end_nanos) {
  if (!TraceEnabled() || name == nullptr) return;
  if (end_nanos < start_nanos) end_nanos = start_nanos;
  ThreadBuffer* buffer = LocalBuffer();
  if (buffer->head.load(std::memory_order_relaxed) >= kSlotsPerThread) {
    dropped_.fetch_add(1, std::memory_order_relaxed);  // overwriting oldest
  }
  buffer->Push(category, name, trace_id, start_nanos, end_nanos);
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (auto& buffer : buffers_) {
    buffer->head.store(0, std::memory_order_relaxed);
  }
  dropped_.store(0, std::memory_order_relaxed);
}

std::uint64_t TraceRecorder::dropped_events() const {
  return dropped_.load(std::memory_order_relaxed);
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  std::vector<TraceEvent> events;
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (const auto& buffer : buffers_) {
    const std::uint64_t head = buffer->head.load(std::memory_order_acquire);
    const std::uint64_t count = std::min<std::uint64_t>(head, kSlotsPerThread);
    for (std::uint64_t i = head - count; i < head; ++i) {
      TraceEvent event;
      if (buffer->Read(static_cast<std::size_t>(i % kSlotsPerThread),
                       &event)) {
        events.push_back(event);
      }
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.start_nanos != b.start_nanos) {
                return a.start_nanos < b.start_nanos;
              }
              return a.end_nanos > b.end_nanos;  // parents before children
            });
  return events;
}

std::vector<TraceEvent> TraceRecorder::SnapshotTrace(
    std::uint64_t trace_id) const {
  std::vector<TraceEvent> events = Snapshot();
  events.erase(std::remove_if(events.begin(), events.end(),
                              [trace_id](const TraceEvent& e) {
                                return e.trace_id != trace_id;
                              }),
               events.end());
  return events;
}

namespace {

void WriteJsonString(std::ostream& out, const char* s) {
  out << '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out << buf;
    } else {
      out << c;
    }
  }
  out << '"';
}

/// Emits one Chrome trace event line. `ph` is "B" or "E"; ts is in
/// microseconds (Chrome's unit) with nanosecond decimals preserved.
void WriteChromeEvent(std::ostream& out, bool* first, const char* ph,
                      const TraceEvent& event, std::uint64_t ts_nanos) {
  if (!*first) out << ",\n";
  *first = false;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", ts_nanos / 1000,
                static_cast<unsigned>(ts_nanos % 1000));
  out << "    {\"ph\": \"" << ph << "\", \"pid\": 1, \"tid\": " << event.tid
      << ", \"ts\": " << buf;
  if (ph[0] == 'B') {
    out << ", \"name\": ";
    WriteJsonString(out, event.name);
    out << ", \"cat\": \"" << TraceCategoryName(event.category) << '"';
    if (event.trace_id != 0) {
      out << ", \"args\": {\"trace_id\": " << event.trace_id << '}';
    }
  }
  out << '}';
}

}  // namespace

void TraceRecorder::SetMetadata(const std::string& key,
                                const std::string& value) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (auto& entry : metadata_) {
    if (entry.first == key) {
      entry.second = value;
      return;
    }
  }
  metadata_.emplace_back(key, value);
  std::sort(metadata_.begin(), metadata_.end());
}

Status TraceRecorder::ExportChromeTrace(std::ostream& out) const {
  const std::vector<TraceEvent> events = Snapshot();  // (tid, start) order
  std::vector<std::pair<std::string, std::string>> metadata;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    metadata = metadata_;
  }

  out << "{\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": {";
  bool first_meta = true;
  for (const auto& [key, value] : metadata) {
    out << (first_meta ? "\n    " : ",\n    ");
    first_meta = false;
    WriteJsonString(out, key.c_str());
    out << ": ";
    WriteJsonString(out, value.c_str());
  }
  out << (first_meta ? "},\n" : "\n  },\n") << "  \"traceEvents\": [\n";
  bool first = true;

  // Complete spans become balanced B/E pairs per thread: within one tid the
  // events are in pre-order (start ascending, longer span first on ties), so
  // a stack sweep closes every span that ends before the next one begins.
  // RAII scoping guarantees proper nesting on each thread; retroactive spans
  // that would straddle a boundary are clamped to their parent.
  std::vector<TraceEvent> open;
  std::uint32_t current_tid = 0;
  auto close_through = [&](std::uint64_t until_nanos) {
    while (!open.empty() && open.back().end_nanos <= until_nanos) {
      WriteChromeEvent(out, &first, "E", open.back(), open.back().end_nanos);
      open.pop_back();
    }
  };
  for (const TraceEvent& event : events) {
    if (!open.empty() && event.tid != current_tid) {
      close_through(UINT64_MAX);
    }
    current_tid = event.tid;
    close_through(event.start_nanos);
    TraceEvent begin = event;
    if (!open.empty() && begin.end_nanos > open.back().end_nanos) {
      begin.end_nanos = open.back().end_nanos;  // keep nesting well-formed
    }
    WriteChromeEvent(out, &first, "B", begin, begin.start_nanos);
    open.push_back(begin);
  }
  close_through(UINT64_MAX);

  out << "\n  ]\n}\n";
  if (!out) return Status::IOError("short write while exporting trace");
  return Status::OK();
}

Status TraceRecorder::ExportChromeTraceToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  Status status = ExportChromeTrace(out);
  if (!status.ok()) return status;
  out.flush();
  if (!out) return Status::IOError("short write to " + path);
  return Status::OK();
}

TraceContext CurrentTraceContext() {
  const trace_internal::ThreadTraceState& state = trace_internal::ThreadState();
  TraceContext context;
  context.trace_id = state.trace_id;
  context.sampled = !state.suppressed;
  context.client_send_nanos = TraceNowNanos();
  return context;
}

namespace {

/// One Chrome trace export split back into its parts. Parsing leans on the
/// exporter's deterministic layout (ExportChromeTrace writes one event per
/// line, strings never contain raw newlines — control characters are
/// \u-escaped), so line anchors are unambiguous.
struct ParsedChromeTrace {
  std::vector<std::string> other_data;  // "key": "value" fragments
  std::vector<std::string> events;      // {...} fragments, no trailing comma
};

void SplitJoinedLines(const std::string& body, const char* separator,
                      std::vector<std::string>* out) {
  if (body.empty()) return;
  std::size_t start = 0;
  const std::size_t sep_len = std::strlen(separator);
  while (true) {
    const std::size_t next = body.find(separator, start);
    if (next == std::string::npos) {
      out->push_back(body.substr(start));
      return;
    }
    out->push_back(body.substr(start, next - start));
    start = next + sep_len;
  }
}

Status ParseExportedTrace(const std::string& json, const char* what,
                          ParsedChromeTrace* out) {
  const std::size_t events_pos = json.find("\n  \"traceEvents\": [");
  const std::size_t meta_pos = json.find("\"otherData\": {");
  if (events_pos == std::string::npos || meta_pos == std::string::npos ||
      meta_pos > events_pos) {
    return Status::InvalidArgument(
        std::string(what) + " trace is not an ifls Chrome trace export");
  }

  // otherData body: between the opening '{' and the '}' that closes the
  // block right before the traceEvents anchor.
  const std::size_t meta_begin = meta_pos + std::strlen("\"otherData\": {");
  const std::size_t meta_end = json.rfind('}', events_pos);
  if (meta_end == std::string::npos || meta_end < meta_begin) {
    return Status::InvalidArgument(std::string(what) +
                                   " trace has a malformed otherData block");
  }
  std::string meta_body = json.substr(meta_begin, meta_end - meta_begin);
  // Strip the surrounding layout whitespace, leaving the ",\n    "-joined
  // entry list (empty for "otherData": {}).
  while (!meta_body.empty() &&
         (meta_body.front() == '\n' || meta_body.front() == ' ')) {
    meta_body.erase(meta_body.begin());
  }
  while (!meta_body.empty() &&
         (meta_body.back() == '\n' || meta_body.back() == ' ')) {
    meta_body.pop_back();
  }
  std::vector<std::string> meta_entries;
  SplitJoinedLines(meta_body, ",\n    ", &meta_entries);
  for (std::string& entry : meta_entries) {
    if (!entry.empty()) out->other_data.push_back(std::move(entry));
  }

  // traceEvents body: between "[\n" and the closing "\n  ]".
  const std::size_t body_begin =
      events_pos + std::strlen("\n  \"traceEvents\": [\n");
  const std::size_t body_end = json.find("\n  ]", body_begin);
  if (body_end == std::string::npos) {
    return Status::InvalidArgument(std::string(what) +
                                   " trace has an unterminated event array");
  }
  std::vector<std::string> event_lines;
  SplitJoinedLines(json.substr(body_begin, body_end - body_begin), ",\n",
                   &event_lines);
  for (std::string& line : event_lines) {
    while (!line.empty() && (line.front() == ' ' || line.front() == '\n')) {
      line.erase(line.begin());
    }
    if (!line.empty()) out->events.push_back(std::move(line));
  }
  return Status::OK();
}

/// Shifts an event line's "ts" (µs with 3 ns decimals) by `offset_nanos`,
/// clamping at zero, and moves the event from pid 1 to pid 2.
Status RehomeServerEvent(std::string* line, std::int64_t offset_nanos) {
  const std::size_t pid_pos = line->find("\"pid\": 1");
  if (pid_pos == std::string::npos) {
    return Status::InvalidArgument("server trace event without pid 1: " +
                                   *line);
  }
  (*line)[pid_pos + std::strlen("\"pid\": ")] = '2';

  const std::size_t ts_key = line->find("\"ts\": ");
  if (ts_key == std::string::npos) {
    return Status::InvalidArgument("server trace event without ts: " + *line);
  }
  const std::size_t num_begin = ts_key + std::strlen("\"ts\": ");
  std::size_t num_end = num_begin;
  while (num_end < line->size() &&
         (std::isdigit(static_cast<unsigned char>((*line)[num_end])) ||
          (*line)[num_end] == '.')) {
    ++num_end;
  }
  unsigned long long micros = 0;
  unsigned frac = 0;
  if (std::sscanf(line->c_str() + num_begin, "%llu.%u", &micros, &frac) != 2) {
    return Status::InvalidArgument("unparseable ts in server trace event: " +
                                   *line);
  }
  std::int64_t nanos =
      static_cast<std::int64_t>(micros) * 1000 + static_cast<std::int64_t>(frac);
  nanos += offset_nanos;
  if (nanos < 0) nanos = 0;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u",
                static_cast<std::uint64_t>(nanos) / 1000,
                static_cast<unsigned>(static_cast<std::uint64_t>(nanos) % 1000));
  line->replace(num_begin, num_end - num_begin, buf);
  return Status::OK();
}

}  // namespace

Status MergeChromeTraces(const std::string& client_json,
                         const std::string& server_json,
                         std::int64_t server_clock_offset_nanos,
                         std::string* merged) {
  ParsedChromeTrace client;
  ParsedChromeTrace server;
  Status status = ParseExportedTrace(client_json, "client", &client);
  if (!status.ok()) return status;
  status = ParseExportedTrace(server_json, "server", &server);
  if (!status.ok()) return status;

  std::string out;
  out += "{\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": {";
  bool first = true;
  for (const std::string& entry : client.other_data) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += entry;
  }
  for (const std::string& entry : server.other_data) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    // `entry` is `"key": "value"`; prefix the key so client and server
    // metadata never collide in the merged block.
    if (entry.empty() || entry.front() != '"') {
      return Status::InvalidArgument("malformed server otherData entry: " +
                                     entry);
    }
    out += "\"server.";
    out += entry.substr(1);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"traceEvents\": [\n";
  out +=
      "    {\"ph\": \"M\", \"pid\": 1, \"name\": \"process_name\", "
      "\"args\": {\"name\": \"ifls_client\"}},\n";
  out +=
      "    {\"ph\": \"M\", \"pid\": 2, \"name\": \"process_name\", "
      "\"args\": {\"name\": \"ifls_server\"}}";
  for (const std::string& event : client.events) {
    out += ",\n    ";
    out += event;
  }
  for (std::string event : server.events) {
    status = RehomeServerEvent(&event, server_clock_offset_nanos);
    if (!status.ok()) return status;
    out += ",\n    ";
    out += event;
  }
  out += "\n  ]\n}\n";
  *merged = std::move(out);
  return Status::OK();
}

void TraceSpan::Finish() {
  TraceRecorder::Global().Record(category_, name_, trace_id_, start_nanos_,
                                 TraceNowNanos());
}

std::string FormatSpanTree(const std::vector<TraceEvent>& events,
                           std::size_t max_lines) {
  std::vector<TraceEvent> sorted = events;
  std::sort(sorted.begin(), sorted.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.start_nanos != b.start_nanos) {
                return a.start_nanos < b.start_nanos;
              }
              return a.end_nanos > b.end_nanos;
            });

  std::string result;
  std::vector<std::uint64_t> open_ends;
  std::uint32_t current_tid = 0;
  std::size_t emitted = 0;
  for (const TraceEvent& event : sorted) {
    if (event.tid != current_tid) open_ends.clear();
    current_tid = event.tid;
    while (!open_ends.empty() && open_ends.back() <= event.start_nanos) {
      open_ends.pop_back();
    }
    if (emitted == max_lines) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "\n  ... (+%zu more spans)",
                    sorted.size() - emitted);
      result += buf;
      break;
    }
    char buf[160];
    std::snprintf(buf, sizeof(buf), "\n  %*s[%s] %s %.3fms",
                  static_cast<int>(2 * open_ends.size()), "",
                  TraceCategoryName(event.category), event.name,
                  static_cast<double>(event.end_nanos - event.start_nanos) /
                      1e6);
    result += buf;
    open_ends.push_back(event.end_nanos);
    ++emitted;
  }
  return result;
}

}  // namespace ifls
