#ifndef IFLS_COMMON_RNG_H_
#define IFLS_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace ifls {

/// Deterministic PRNG (xoshiro256**). Workload generation must be exactly
/// reproducible across platforms and standard-library versions, so we do not
/// use std::mt19937 + std::*_distribution (distributions are
/// implementation-defined). All sampling helpers below are hand-rolled.
class Rng {
 public:
  /// Seeds via SplitMix64 expansion so nearby seeds give unrelated streams.
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t Next();

  /// Uniform in [0, bound). Precondition: bound > 0. Uses rejection sampling,
  /// so the result is exactly uniform.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal via Box-Muller (deterministic; caches the pair).
  double NextGaussian();

  /// Normal with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  /// True with probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (std::size_t i = v->size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextBounded(i));
      using std::swap;
      swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n,
                                                    std::size_t k);

 private:
  std::uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace ifls

#endif  // IFLS_COMMON_RNG_H_
