#ifndef IFLS_COMMON_VERSIONED_H_
#define IFLS_COMMON_VERSIONED_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>

namespace ifls {

/// RCU-style publication cell for immutable, reference-counted state.
///
/// Writers build a complete replacement object off to the side and Store()
/// it; readers Acquire() a shared_ptr copy and keep using their copy for as
/// long as they like. A published object is never mutated again, so readers
/// observe either the old state or the new one, never a torn mix, and never
/// wait on a writer's *work* — building the replacement happens entirely
/// outside the cell, and the critical section here is a single pointer-sized
/// copy. The old object stays alive until the last reader drops its
/// reference (the shared_ptr control block is the grace period).
///
/// The pointer slot is guarded by a plain mutex rather than
/// `std::atomic<std::shared_ptr>`: libstdc++ implements the latter with an
/// internal spin-lock whose reader-side unlock is relaxed, which
/// ThreadSanitizer cannot model (it reports a false race between load and
/// exchange). A mutex held for one refcount bump is just as cheap here and
/// keeps the concurrency suite sanitizer-clean.
///
/// `version()` is bumped after every successful Store, so pollers can detect
/// publications without comparing pointers.
template <typename T>
class VersionedPtr {
 public:
  VersionedPtr() = default;
  explicit VersionedPtr(std::shared_ptr<const T> initial)
      : ptr_(std::move(initial)) {}

  VersionedPtr(const VersionedPtr&) = delete;
  VersionedPtr& operator=(const VersionedPtr&) = delete;

  /// One O(1) pointer copy; the returned reference keeps the state alive.
  std::shared_ptr<const T> Acquire() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ptr_;
  }

  /// Publishes `next` (which must not be mutated afterwards) and bumps the
  /// version. Returns the displaced state.
  std::shared_ptr<const T> Store(std::shared_ptr<const T> next) {
    std::shared_ptr<const T> old;
    {
      std::lock_guard<std::mutex> lock(mu_);
      old = std::move(ptr_);
      ptr_ = std::move(next);
    }
    version_.fetch_add(1, std::memory_order_release);
    return old;
  }

  /// Number of Store() calls so far.
  std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const T> ptr_;
  std::atomic<std::uint64_t> version_{0};
};

}  // namespace ifls

#endif  // IFLS_COMMON_VERSIONED_H_
