#ifndef IFLS_COMMON_METRICS_H_
#define IFLS_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>

namespace ifls {

/// Lock-free log-bucketed latency histogram: Record() is a couple of relaxed
/// atomic increments, safe from any number of threads, and percentile reads
/// may run concurrently with writers (they see some consistent-enough recent
/// state — metrics, not synchronization).
///
/// Buckets are powers of two over microseconds: bucket k holds samples in
/// [2^k, 2^(k+1)) us, bucket 0 additionally catches sub-microsecond samples.
/// PercentileSeconds returns the upper bound of the bucket containing the
/// requested quantile, so the error is at most 2x — plenty for p50/p99
/// service dashboards, and the fixed layout means zero allocation on the
/// record path.
class LatencyHistogram {
 public:
  static constexpr int kNumBuckets = 40;  // 2^40 us ~ 12.7 days

  LatencyHistogram() = default;

  void Record(double seconds);

  /// Total samples recorded.
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  /// Sum of all recorded values (seconds); mean = sum / count.
  double total_seconds() const;
  double MeanSeconds() const;

  /// Upper bound of the bucket holding quantile `q` in [0, 1]; 0 when empty.
  double PercentileSeconds(double q) const;

  void Reset();

  /// Samples recorded into bucket `b` in [0, kNumBuckets); used by the
  /// metrics registry's Prometheus exposition.
  std::uint64_t bucket_count(int b) const {
    return buckets_[static_cast<std::size_t>(b)].load(
        std::memory_order_relaxed);
  }

  /// Upper bound of bucket `b` in seconds: 2^(b+1) microseconds.
  static double BucketUpperBoundSeconds(int b) {
    return std::ldexp(1.0, b + 1) * 1e-6;
  }

  /// "count=N mean=Xus p50=Yus p99=Zus".
  std::string ToString() const;

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  /// Seconds accumulated as fixed-point nanoseconds (atomic doubles lack
  /// fetch_add everywhere we build).
  std::atomic<std::uint64_t> total_nanos_{0};
};

}  // namespace ifls

#endif  // IFLS_COMMON_METRICS_H_
