#ifndef IFLS_COMMON_HASH_H_
#define IFLS_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

namespace ifls {

// FNV-1a 64-bit: the checksum primitive shared by the v3 snapshot codec
// (index/vip_tree_io_v3) and the network wire protocol (net/wire) — fast,
// dependency-free, and plenty for detecting torn writes, bit rot and
// truncated frames. These are integrity checks, not authentication.

inline constexpr std::uint64_t kFnv1a64OffsetBasis = 14695981039346656037ull;
inline constexpr std::uint64_t kFnv1a64Prime = 1099511628211ull;

/// Continues a running FNV-1a 64 state over `bytes` more bytes (for
/// multi-section checksums fed incrementally).
inline std::uint64_t Fnv1a64Continue(std::uint64_t state, const void* data,
                                     std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    state ^= static_cast<std::uint64_t>(p[i]);
    state *= kFnv1a64Prime;
  }
  return state;
}

/// FNV-1a 64-bit over one byte range.
inline std::uint64_t Fnv1a64(const void* data, std::size_t bytes) {
  return Fnv1a64Continue(kFnv1a64OffsetBasis, data, bytes);
}

}  // namespace ifls

#endif  // IFLS_COMMON_HASH_H_
