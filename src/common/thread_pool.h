#ifndef IFLS_COMMON_THREAD_POOL_H_
#define IFLS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ifls {

/// Fixed-size thread pool with one shared FIFO queue (deliberately
/// work-stealing-free: IFLS batch items are coarse enough that a single
/// mutex-protected queue never becomes the bottleneck, and the simplicity
/// keeps the concurrency story auditable). Tasks must not throw.
///
/// With `num_threads <= 1` no worker threads are spawned and every task runs
/// inline on the submitting thread, so single-threaded callers pay nothing
/// and batch results are trivially identical to a plain loop.
class ThreadPool {
 public:
  /// `num_threads <= 1` creates an inline (threadless) pool.
  explicit ThreadPool(int num_threads);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of execution lanes (1 for the inline pool).
  int num_threads() const { return num_threads_; }

  /// Enqueues `task`. Inline pools run it before returning.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished executing. Safe
  /// to call repeatedly; new work may be submitted afterwards.
  void Wait();

  /// Runs `fn(i)` for every i in [0, n), spread across the pool with the
  /// calling thread participating, and returns when all iterations are
  /// done. Iterations are claimed dynamically (atomic counter), so the
  /// mapping of index to thread is scheduling-dependent — callers must make
  /// each iteration's effect depend only on its index.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// allows 0 for "unknown").
  static int DefaultThreads();

 private:
  void WorkerLoop();

  const int num_threads_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // queued + currently executing
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ifls

#endif  // IFLS_COMMON_THREAD_POOL_H_
