#ifndef IFLS_COMMON_MEMORY_TRACKER_H_
#define IFLS_COMMON_MEMORY_TRACKER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace ifls {

/// Tracks logical bytes held by a query's data structures, recording the
/// high-water mark. This reproduces the paper's "memory cost" metric: each
/// algorithm charges the tracker when its key structures (priority queue,
/// retrieved-facility lists, candidate answer sets, ...) grow and releases
/// when they shrink. Deterministic and allocator-independent, so the memory
/// benchmarks are stable across platforms.
///
/// Thread-safe: the counters are atomic, so one tracker may be installed on
/// several threads at once (e.g. a batch engine measuring a whole fan-out).
/// The peak is maintained with a CAS loop and is exact — it can only miss a
/// high-water mark that no single linearized interleaving ever reached. The
/// usual deployment is still one tracker per query on one thread, where the
/// metric is bit-for-bit what the sequential implementation reported.
class MemoryTracker {
 public:
  MemoryTracker() = default;

  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  void Charge(std::int64_t bytes) {
    const std::int64_t now =
        current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    std::int64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak && !peak_.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
  }

  void Release(std::int64_t bytes) {
    current_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  /// Accounts bytes backed by a file mapping rather than the heap. Mapped
  /// regions are reclaimable by the kernel at any time (the page cache owns
  /// the data), so they are tracked as a separate gauge and deliberately do
  /// NOT feed `current_`/`peak_` — the heap peak is what eviction budgets
  /// and the paper's memory metric reason about, and counting mmap-ed index
  /// payload there would inflate both.
  void ChargeMapped(std::int64_t bytes) {
    mapped_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void ReleaseMapped(std::int64_t bytes) {
    mapped_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  /// Currently-held logical bytes.
  std::int64_t current_bytes() const {
    return current_.load(std::memory_order_relaxed);
  }
  /// High-water mark since construction / last Reset().
  std::int64_t peak_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }
  /// Currently file-mapped bytes (never part of the heap peak).
  std::int64_t mapped_bytes() const {
    return mapped_.load(std::memory_order_relaxed);
  }

  void Reset() {
    current_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
    mapped_.store(0, std::memory_order_relaxed);
  }

  /// Per-scope high-water reset. On construction the tracker's peak is wound
  /// back to the *current* held bytes, so `scope_peak_bytes()` reports the
  /// high-water mark reached inside this scope only (e.g. an arena build vs a
  /// later query, instead of one conflated global peak). On destruction the
  /// outer peak is restored to max(outer peak, scope peak), so enclosing
  /// scopes still see the true overall high-water mark. Scopes nest; intended
  /// for single-threaded measurement sections.
  class ScopedPeak {
   public:
    explicit ScopedPeak(MemoryTracker* tracker) : tracker_(tracker) {
      saved_peak_ = tracker_->peak_.load(std::memory_order_relaxed);
      tracker_->peak_.store(tracker_->current_bytes(),
                            std::memory_order_relaxed);
    }
    ~ScopedPeak() {
      const std::int64_t scope_peak = scope_peak_bytes();
      if (saved_peak_ > scope_peak) {
        tracker_->peak_.store(saved_peak_, std::memory_order_relaxed);
      }
    }

    ScopedPeak(const ScopedPeak&) = delete;
    ScopedPeak& operator=(const ScopedPeak&) = delete;

    /// High-water mark since this scope began.
    std::int64_t scope_peak_bytes() const {
      return tracker_->peak_.load(std::memory_order_relaxed);
    }

   private:
    MemoryTracker* tracker_;
    std::int64_t saved_peak_;
  };

 private:
  std::atomic<std::int64_t> current_{0};
  std::atomic<std::int64_t> peak_{0};
  std::atomic<std::int64_t> mapped_{0};
};

/// Thread-local active tracker used by TrackingAllocator. Null when no scope
/// is active (allocations then go untracked).
MemoryTracker* ActiveMemoryTracker();

/// Installs `tracker` as the thread's active tracker for the scope lifetime;
/// restores the previous tracker on destruction. Scopes nest.
class ScopedMemoryTracking {
 public:
  explicit ScopedMemoryTracking(MemoryTracker* tracker);
  ~ScopedMemoryTracking();

  ScopedMemoryTracking(const ScopedMemoryTracking&) = delete;
  ScopedMemoryTracking& operator=(const ScopedMemoryTracking&) = delete;

 private:
  MemoryTracker* previous_;
};

/// STL-compatible allocator charging the thread's active MemoryTracker.
/// Containers that dominate a query's footprint can be declared with this
/// allocator so their growth is captured without manual Charge calls.
template <typename T>
class TrackingAllocator {
 public:
  using value_type = T;

  TrackingAllocator() = default;
  template <typename U>
  TrackingAllocator(const TrackingAllocator<U>&) {}  // NOLINT

  T* allocate(std::size_t n) {
    if (MemoryTracker* t = ActiveMemoryTracker(); t != nullptr) {
      t->Charge(static_cast<std::int64_t>(n * sizeof(T)));
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }

  void deallocate(T* p, std::size_t n) {
    if (MemoryTracker* t = ActiveMemoryTracker(); t != nullptr) {
      t->Release(static_cast<std::int64_t>(n * sizeof(T)));
    }
    ::operator delete(p);
  }

  template <typename U>
  bool operator==(const TrackingAllocator<U>&) const {
    return true;
  }
  template <typename U>
  bool operator!=(const TrackingAllocator<U>&) const {
    return false;
  }
};

}  // namespace ifls

#endif  // IFLS_COMMON_MEMORY_TRACKER_H_
