#ifndef IFLS_COMMON_MEMORY_TRACKER_H_
#define IFLS_COMMON_MEMORY_TRACKER_H_

#include <cstddef>
#include <cstdint>

namespace ifls {

/// Tracks logical bytes held by a query's data structures, recording the
/// high-water mark. This reproduces the paper's "memory cost" metric: each
/// algorithm charges the tracker when its key structures (priority queue,
/// retrieved-facility lists, candidate answer sets, ...) grow and releases
/// when they shrink. Deterministic and allocator-independent, so the memory
/// benchmarks are stable across platforms.
class MemoryTracker {
 public:
  MemoryTracker() = default;

  void Charge(std::int64_t bytes) {
    current_ += bytes;
    if (current_ > peak_) peak_ = current_;
  }

  void Release(std::int64_t bytes) { current_ -= bytes; }

  /// Currently-held logical bytes.
  std::int64_t current_bytes() const { return current_; }
  /// High-water mark since construction / last Reset().
  std::int64_t peak_bytes() const { return peak_; }

  void Reset() {
    current_ = 0;
    peak_ = 0;
  }

 private:
  std::int64_t current_ = 0;
  std::int64_t peak_ = 0;
};

/// Thread-local active tracker used by TrackingAllocator. Null when no scope
/// is active (allocations then go untracked).
MemoryTracker* ActiveMemoryTracker();

/// Installs `tracker` as the thread's active tracker for the scope lifetime;
/// restores the previous tracker on destruction. Scopes nest.
class ScopedMemoryTracking {
 public:
  explicit ScopedMemoryTracking(MemoryTracker* tracker);
  ~ScopedMemoryTracking();

  ScopedMemoryTracking(const ScopedMemoryTracking&) = delete;
  ScopedMemoryTracking& operator=(const ScopedMemoryTracking&) = delete;

 private:
  MemoryTracker* previous_;
};

/// STL-compatible allocator charging the thread's active MemoryTracker.
/// Containers that dominate a query's footprint can be declared with this
/// allocator so their growth is captured without manual Charge calls.
template <typename T>
class TrackingAllocator {
 public:
  using value_type = T;

  TrackingAllocator() = default;
  template <typename U>
  TrackingAllocator(const TrackingAllocator<U>&) {}  // NOLINT

  T* allocate(std::size_t n) {
    if (MemoryTracker* t = ActiveMemoryTracker(); t != nullptr) {
      t->Charge(static_cast<std::int64_t>(n * sizeof(T)));
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }

  void deallocate(T* p, std::size_t n) {
    if (MemoryTracker* t = ActiveMemoryTracker(); t != nullptr) {
      t->Release(static_cast<std::int64_t>(n * sizeof(T)));
    }
    ::operator delete(p);
  }

  template <typename U>
  bool operator==(const TrackingAllocator<U>&) const {
    return true;
  }
  template <typename U>
  bool operator!=(const TrackingAllocator<U>&) const {
    return false;
  }
};

}  // namespace ifls

#endif  // IFLS_COMMON_MEMORY_TRACKER_H_
