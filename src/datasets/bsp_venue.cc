#include "src/datasets/bsp_venue.h"

#include <algorithm>
#include <queue>
#include <vector>

#include "src/common/logging.h"
#include "src/indoor/venue_builder.h"

namespace ifls {
namespace {

/// Minimum shared-wall length that can host a door.
constexpr double kDoorWidth = 1.2;

/// Union-find for the spanning-tree door placement.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  std::size_t Find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool Union(std::size_t a, std::size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
};

/// If `a` and `b` share a wall segment long enough for a door, writes a
/// door position drawn from the central 60% of the shared segment.
bool SharedWallDoor(const Rect& a, const Rect& b, Rng* rng, Point* door) {
  constexpr double kTol = 1e-9;
  auto pick = [&](double lo, double hi) {
    return lo + (hi - lo) * rng->NextUniform(0.2, 0.8);
  };
  if (std::abs(a.max_x - b.min_x) <= kTol || std::abs(b.max_x - a.min_x) <= kTol) {
    const double wall_x = std::abs(a.max_x - b.min_x) <= kTol ? a.max_x : b.max_x;
    const double lo = std::max(a.min_y, b.min_y);
    const double hi = std::min(a.max_y, b.max_y);
    if (hi - lo >= kDoorWidth) {
      *door = Point(wall_x, pick(lo, hi), a.level);
      return true;
    }
  }
  if (std::abs(a.max_y - b.min_y) <= kTol || std::abs(b.max_y - a.min_y) <= kTol) {
    const double wall_y = std::abs(a.max_y - b.min_y) <= kTol ? a.max_y : b.max_y;
    const double lo = std::max(a.min_x, b.min_x);
    const double hi = std::min(a.max_x, b.max_x);
    if (hi - lo >= kDoorWidth) {
      *door = Point(pick(lo, hi), wall_y, a.level);
      return true;
    }
  }
  return false;
}

/// Randomized BSP of one floor into ~target rooms.
std::vector<Rect> SplitFloor(const BspVenueSpec& spec, Level level,
                             Rng* rng) {
  // Largest-area-first splitting keeps room sizes balanced-but-varied.
  auto cmp = [](const Rect& a, const Rect& b) { return a.area() < b.area(); };
  std::priority_queue<Rect, std::vector<Rect>, decltype(cmp)> open(cmp);
  open.push(Rect(0, 0, spec.width, spec.height, level));
  std::vector<Rect> done;
  while (!open.empty() &&
         open.size() + done.size() <
             static_cast<std::size_t>(spec.rooms_per_level)) {
    Rect r = open.top();
    open.pop();
    const bool split_x = r.width() >= r.height();
    const double len = split_x ? r.width() : r.height();
    if (len < 2 * spec.min_room_side) {
      done.push_back(r);
      continue;
    }
    const double cut =
        rng->NextUniform(spec.min_room_side, len - spec.min_room_side);
    if (split_x) {
      open.push(Rect(r.min_x, r.min_y, r.min_x + cut, r.max_y, level));
      open.push(Rect(r.min_x + cut, r.min_y, r.max_x, r.max_y, level));
    } else {
      open.push(Rect(r.min_x, r.min_y, r.max_x, r.min_y + cut, level));
      open.push(Rect(r.min_x, r.min_y + cut, r.max_x, r.max_y, level));
    }
  }
  while (!open.empty()) {
    done.push_back(open.top());
    open.pop();
  }
  return done;
}

}  // namespace

Result<Venue> GenerateBspVenue(const BspVenueSpec& spec, Rng* rng) {
  if (spec.levels < 1 || spec.rooms_per_level < 2 || spec.width <= 0 ||
      spec.height <= 0 || spec.min_room_side <= 0) {
    return Status::InvalidArgument("bsp venue spec must be positive");
  }
  if (spec.width < 2 * spec.min_room_side ||
      spec.height < 2 * spec.min_room_side) {
    return Status::InvalidArgument("floor too small for min_room_side");
  }
  IFLS_CHECK(rng != nullptr);

  VenueBuilder builder(spec.name);
  std::vector<std::vector<PartitionId>> rooms_by_level(
      static_cast<std::size_t>(spec.levels));
  for (int level = 0; level < spec.levels; ++level) {
    const std::vector<Rect> rects =
        SplitFloor(spec, static_cast<Level>(level), rng);
    std::vector<PartitionId>& rooms =
        rooms_by_level[static_cast<std::size_t>(level)];
    for (const Rect& r : rects) {
      rooms.push_back(builder.AddPartition(r, PartitionKind::kRoom));
    }
    // Adjacent pairs that can host a door.
    struct Candidate {
      std::size_t a, b;
      Point door;
    };
    std::vector<Candidate> candidates;
    for (std::size_t i = 0; i < rooms.size(); ++i) {
      for (std::size_t j = i + 1; j < rooms.size(); ++j) {
        Point door;
        if (SharedWallDoor(builder.partition(rooms[i]).rect,
                           builder.partition(rooms[j]).rect, rng, &door)) {
          candidates.push_back({i, j, door});
        }
      }
    }
    // Random spanning tree first (connectivity), then extra doors.
    rng->Shuffle(&candidates);
    DisjointSets sets(rooms.size());
    std::size_t connected = 1;
    for (const Candidate& c : candidates) {
      if (sets.Union(c.a, c.b)) {
        builder.AddDoor(rooms[c.a], rooms[c.b], c.door);
        ++connected;
      } else if (rng->NextBernoulli(spec.extra_door_fraction)) {
        builder.AddDoor(rooms[c.a], rooms[c.b], c.door);
      }
    }
    if (connected != rooms.size()) {
      return Status::Internal(
          "BSP floor not connectable (min_room_side too large for door "
          "width?)");
    }
  }

  // Stairs: on each pair of adjacent levels, join the rooms containing the
  // floor's centre point (they overlap there by construction).
  const Point centre(spec.width / 2, spec.height / 2, 0);
  for (int level = 0; level + 1 < spec.levels; ++level) {
    auto room_at_centre = [&](int l) -> PartitionId {
      for (PartitionId p : rooms_by_level[static_cast<std::size_t>(l)]) {
        Rect r = builder.partition(p).rect;
        r.level = 0;  // compare planar only
        if (r.Contains(centre)) return p;
      }
      return rooms_by_level[static_cast<std::size_t>(l)].front();
    };
    const PartitionId lower = room_at_centre(level);
    const PartitionId upper = room_at_centre(level + 1);
    builder.AddStairDoor(lower, upper,
                         Point(centre.x, centre.y, static_cast<Level>(level)),
                         spec.stair_length);
  }
  return builder.Build();
}

}  // namespace ifls
