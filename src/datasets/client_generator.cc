#include "src/datasets/client_generator.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/indoor/point_location.h"

namespace ifls {
namespace {

bool Eligible(const Partition& p, const ClientGeneratorOptions& options) {
  if (p.kind == PartitionKind::kStairwell) return false;
  if (p.kind == PartitionKind::kCorridor) return options.allow_corridors;
  return true;
}

Point UniformPointInside(const Rect& r, Rng* rng) {
  return Point(rng->NextUniform(r.min_x, r.max_x),
               rng->NextUniform(r.min_y, r.max_y), r.level);
}

}  // namespace

const char* ClientDistributionName(ClientDistribution d) {
  switch (d) {
    case ClientDistribution::kUniform:
      return "uniform";
    case ClientDistribution::kNormal:
      return "normal";
  }
  return "?";
}

std::vector<Client> GenerateClients(const Venue& venue, std::size_t count,
                                    const ClientGeneratorOptions& options,
                                    Rng* rng) {
  IFLS_CHECK(rng != nullptr);
  std::vector<const Partition*> eligible;
  double total_area = 0.0;
  for (const Partition& p : venue.partitions()) {
    if (Eligible(p, options)) {
      eligible.push_back(&p);
      total_area += p.rect.area();
    }
  }
  IFLS_CHECK(!eligible.empty()) << "no client-eligible partitions";

  std::vector<Client> clients;
  clients.reserve(count);

  if (options.distribution == ClientDistribution::kUniform) {
    // Area-weighted partition choice via cumulative areas, then a uniform
    // point inside.
    std::vector<double> cumulative;
    cumulative.reserve(eligible.size());
    double acc = 0.0;
    for (const Partition* p : eligible) {
      acc += p->rect.area();
      cumulative.push_back(acc);
    }
    for (std::size_t i = 0; i < count; ++i) {
      const double r = rng->NextUniform(0.0, total_area);
      const auto it =
          std::lower_bound(cumulative.begin(), cumulative.end(), r);
      const std::size_t idx = std::min(
          static_cast<std::size_t>(it - cumulative.begin()),
          eligible.size() - 1);
      const Partition* p = eligible[idx];
      Client c;
      c.id = static_cast<ClientId>(i);
      c.position = UniformPointInside(p->rect, rng);
      c.partition = p->id;
      clients.push_back(c);
    }
    return clients;
  }

  // Normal distribution around the venue centre. sigma is relative to the
  // half extent of a level's bounds; levels are drawn from a discretized
  // normal around the middle level with the same relative sigma. Rejected
  // samples (walls, stairwells, out of bounds) are redrawn; a bounded retry
  // count guards against pathological sigma values, falling back to the
  // nearest eligible partition's clamped interior point.
  PointLocator locator(&venue);
  const int levels = venue.num_levels();
  const double mid_level = (levels - 1) / 2.0;
  for (std::size_t i = 0; i < count; ++i) {
    Client c;
    c.id = static_cast<ClientId>(i);
    bool placed = false;
    for (int attempt = 0; attempt < 256 && !placed; ++attempt) {
      const Level level = static_cast<Level>(std::lround(rng->NextGaussian(
          mid_level, std::max(0.25, options.sigma * levels / 2.0))));
      if (level < 0 || level >= levels) continue;
      const Rect bounds = venue.LevelBounds(level);
      if (!bounds.IsValid()) continue;
      const Point centre = bounds.center();
      const Point sample(
          rng->NextGaussian(centre.x, options.sigma * bounds.width() / 2.0),
          rng->NextGaussian(centre.y, options.sigma * bounds.height() / 2.0),
          level);
      const PartitionId pid = locator.Locate(sample);
      if (pid == kInvalidPartition) continue;
      const Partition& p = venue.partition(pid);
      if (!Eligible(p, options)) continue;
      c.position = sample;
      c.partition = pid;
      placed = true;
    }
    if (!placed) {
      // Fallback: uniform-eligible partition, clamped toward the centre.
      const Partition* p = eligible[static_cast<std::size_t>(
          rng->NextBounded(eligible.size()))];
      c.position = p->rect.center();
      c.partition = p->id;
    }
    clients.push_back(c);
  }
  return clients;
}

}  // namespace ifls
