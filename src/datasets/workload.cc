#include "src/datasets/workload.h"

#include "src/common/logging.h"

namespace ifls {

Result<Workload> BuildWorkload(const WorkloadSpec& spec) {
  Workload w;
  IFLS_ASSIGN_OR_RETURN(w.venue, BuildPresetVenue(spec.preset));
  if (spec.real_setting) {
    if (spec.preset != VenuePreset::kMelbourneCentral) {
      return Status::InvalidArgument(
          "the real setting is defined on Melbourne Central only");
    }
    IFLS_RETURN_NOT_OK(AssignMelbourneCentralCategories(&w.venue));
  }
  Rng rng(spec.seed);
  IFLS_ASSIGN_OR_RETURN(w.facilities, MakeFacilities(w.venue, spec, &rng));
  w.clients = MakeClients(w.venue, spec, &rng);
  return w;
}

Result<FacilitySets> MakeFacilities(const Venue& venue,
                                    const WorkloadSpec& spec, Rng* rng) {
  if (spec.real_setting) {
    return SelectCategoryFacilities(venue, spec.existing_category);
  }
  return SelectUniformFacilities(venue, spec.num_existing,
                                 spec.num_candidates, rng);
}

std::vector<Client> MakeClients(const Venue& venue, const WorkloadSpec& spec,
                                Rng* rng) {
  return GenerateClients(venue, spec.num_clients, spec.client_options, rng);
}

ParameterGrid PresetParameterGrid(VenuePreset preset) {
  ParameterGrid grid;
  switch (preset) {
    case VenuePreset::kMelbourneCentral:
      grid.existing_sizes = {25, 50, 75, 100, 125};
      grid.candidate_sizes = {100, 125, 150, 175, 200};
      break;
    case VenuePreset::kChadstone:
      grid.existing_sizes = {50, 75, 100, 125, 150};
      grid.candidate_sizes = {100, 200, 300, 400, 500};
      break;
    case VenuePreset::kCopenhagenAirport:
      grid.existing_sizes = {10, 15, 20, 25, 30};
      grid.candidate_sizes = {25, 30, 35, 40, 45};
      break;
    case VenuePreset::kMenziesBuilding:
      grid.existing_sizes = {100, 200, 300, 400, 500};
      grid.candidate_sizes = {300, 400, 500, 600, 700};
      break;
  }
  // Paper: "the mean of these values are used as the default value".
  grid.default_existing = grid.existing_sizes[grid.existing_sizes.size() / 2];
  grid.default_candidates =
      grid.candidate_sizes[grid.candidate_sizes.size() / 2];
  return grid;
}

std::vector<std::size_t> ClientSizeSweep() {
  return {1000, 5000, 10000, 15000, 20000};
}

std::vector<double> SigmaSweep() { return {0.125, 0.25, 0.5, 1.0, 2.0}; }

}  // namespace ifls
