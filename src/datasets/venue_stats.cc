#include "src/datasets/venue_stats.h"

#include <algorithm>
#include <sstream>

#include "src/common/logging.h"

namespace ifls {
namespace {

/// Uniform random point in a random non-stairwell partition.
Client SamplePoint(const Venue& venue, Rng* rng) {
  for (;;) {
    const auto pid = static_cast<PartitionId>(
        rng->NextBounded(venue.num_partitions()));
    const Partition& p = venue.partition(pid);
    if (p.kind == PartitionKind::kStairwell) continue;
    Client c;
    c.partition = pid;
    c.position = Point(rng->NextUniform(p.rect.min_x, p.rect.max_x),
                       rng->NextUniform(p.rect.min_y, p.rect.max_y),
                       p.level());
    return c;
  }
}

}  // namespace

VenueStats ComputeVenueStats(const VipTree& tree, std::size_t samples,
                             std::uint64_t seed) {
  const Venue& venue = tree.venue();
  VenueStats stats;
  stats.partitions = venue.num_partitions();
  stats.doors = venue.num_doors();
  stats.levels = venue.num_levels();
  for (const Partition& p : venue.partitions()) {
    switch (p.kind) {
      case PartitionKind::kRoom:
        ++stats.rooms;
        stats.walkable_area += p.rect.area();
        break;
      case PartitionKind::kCorridor:
        ++stats.corridors;
        stats.walkable_area += p.rect.area();
        break;
      case PartitionKind::kStairwell:
        ++stats.stairwells;
        break;
    }
    stats.max_degree =
        std::max(stats.max_degree, static_cast<int>(p.doors.size()));
    stats.mean_degree += static_cast<double>(p.doors.size());
  }
  if (stats.partitions > 0) {
    stats.mean_degree /= static_cast<double>(stats.partitions);
  }
  for (const Door& d : venue.doors()) {
    if (d.is_stair_door()) ++stats.stair_doors;
  }
  Rng rng(seed);
  double total = 0.0;
  for (std::size_t i = 0; i < samples; ++i) {
    const Client a = SamplePoint(venue, &rng);
    const Client b = SamplePoint(venue, &rng);
    const double dist =
        tree.PointToPoint(a.position, a.partition, b.position, b.partition);
    total += dist;
    stats.max_distance = std::max(stats.max_distance, dist);
  }
  if (samples > 0) stats.mean_distance = total / static_cast<double>(samples);
  return stats;
}

std::string VenueStats::ToString() const {
  std::ostringstream os;
  os << partitions << " partitions (" << rooms << " rooms, " << corridors
     << " corridors, " << stairwells << " stairwells), " << doors
     << " doors (" << stair_doors << " stairs), " << levels
     << " levels; degree mean " << mean_degree << " max " << max_degree
     << "; walkable " << walkable_area << " m^2; pairwise distance mean "
     << mean_distance << " m max " << max_distance << " m";
  return os.str();
}

}  // namespace ifls
