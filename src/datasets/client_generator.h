#ifndef IFLS_DATASETS_CLIENT_GENERATOR_H_
#define IFLS_DATASETS_CLIENT_GENERATOR_H_

#include <vector>

#include "src/common/rng.h"
#include "src/indoor/types.h"
#include "src/indoor/venue.h"

namespace ifls {

/// Spatial distribution of generated clients (paper §6.1.1).
enum class ClientDistribution {
  /// Uniform over walkable area: partitions weighted by area, uniform point
  /// inside.
  kUniform,
  /// 2D normal centred on the venue centre; sigma is relative to the half
  /// extent of the venue (the paper's sigma in {0.125, 0.25, 0.5, 1, 2}).
  /// Levels follow a discretized normal around the middle level.
  kNormal,
};

const char* ClientDistributionName(ClientDistribution d);

/// Parameters for client generation.
struct ClientGeneratorOptions {
  ClientDistribution distribution = ClientDistribution::kUniform;
  /// Relative standard deviation for kNormal (paper default 1.0).
  double sigma = 1.0;
  /// Clients spawn in rooms and corridors, never in stairwells.
  bool allow_corridors = true;
};

/// Generates `count` clients inside the venue, deterministically from `rng`.
/// Client ids are 0..count-1 and each client's partition is set.
std::vector<Client> GenerateClients(const Venue& venue, std::size_t count,
                                    const ClientGeneratorOptions& options,
                                    Rng* rng);

}  // namespace ifls

#endif  // IFLS_DATASETS_CLIENT_GENERATOR_H_
