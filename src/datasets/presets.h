#ifndef IFLS_DATASETS_PRESETS_H_
#define IFLS_DATASETS_PRESETS_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/datasets/venue_generator.h"
#include "src/indoor/venue.h"

namespace ifls {

/// The four evaluation venues of the paper (§6.1.1), rebuilt synthetically
/// to the published statistics (rooms / doors / levels / footprint); see
/// DESIGN.md §4 for the substitution rationale.
enum class VenuePreset {
  /// Melbourne Central: 298 rooms, 299 doors, 7 levels.
  kMelbourneCentral,
  /// Chadstone: 679 rooms, 678 doors, 4 levels.
  kChadstone,
  /// Copenhagen Airport ground floor: 76 rooms, 118 doors, 1 level,
  /// ~2000 m x 600 m.
  kCopenhagenAirport,
  /// Menzies Building: 1344 rooms, 1375 doors, 16 levels.
  kMenziesBuilding,
};

/// Stable short names used by benches and IO: "MC", "CH", "CPH", "MZB".
const char* VenuePresetName(VenuePreset preset);

/// All four presets, in the paper's order.
std::vector<VenuePreset> AllVenuePresets();

/// Generator spec for a preset (exposed so tests can assert the mapping).
VenueGeneratorSpec PresetSpec(VenuePreset preset);

/// Builds the preset venue. Room counts match the paper exactly; door
/// counts match within a small tolerance (the generator adds
/// corridor/stair doors the floor-plan statistics fold into their totals).
Result<Venue> BuildPresetVenue(VenuePreset preset);

/// Melbourne Central tenant categories used by the real-setting experiments
/// (§6.1.2), with the paper's exact cardinalities. Partitions of one
/// category form Fe; the remaining categorized partitions form Fn.
struct McCategory {
  std::string name;
  int count = 0;
};

/// The five named categories (fashion & accessories 101, dining &
/// entertainment 54, health & beauty 39, fresh food 19, banks & services
/// 14) plus "general retail" absorbing the rest of the 291 categorized
/// partitions.
std::vector<McCategory> MelbourneCentralCategories();

/// Assigns categories to the MC venue's rooms in spatially clustered blocks
/// (mall tenants of a category cluster together), with exactly the
/// cardinalities above; the remaining rooms stay uncategorized. Requires a
/// venue built from kMelbourneCentral.
Status AssignMelbourneCentralCategories(Venue* venue);

}  // namespace ifls

#endif  // IFLS_DATASETS_PRESETS_H_
