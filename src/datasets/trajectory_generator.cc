#include "src/datasets/trajectory_generator.h"

#include <algorithm>

#include "src/common/logging.h"

namespace ifls {
namespace {

/// A straight walkable piece of a route: from `from` to `to` inside
/// `partition`, of walking length `length` (vertical stair pieces keep
/// from == to planar but consume stair length and switch levels).
struct RoutePiece {
  Point from;
  Point to;
  /// Partition of the first half of the piece and of the second half; they
  /// differ only for stair dwell pieces (the level flips mid-climb).
  PartitionId partition_from = kInvalidPartition;
  PartitionId partition_to = kInvalidPartition;
  double length = 0.0;
};

PartitionId CommonPartition(const Door& a, const Door& b) {
  if (b.Connects(a.partition_a)) return a.partition_a;
  if (b.Connects(a.partition_b)) return a.partition_b;
  return kInvalidPartition;
}

/// Expands an IndoorPath into consecutive route pieces covering its whole
/// length (planar legs inside partitions plus stair-door dwell pieces).
std::vector<RoutePiece> ExpandPath(const Venue& venue,
                                   const IndoorPath& path) {
  std::vector<RoutePiece> pieces;
  if (path.doors.empty()) {
    pieces.push_back({path.start, path.end, path.start_partition,
                      path.start_partition,
                      PlanarDistance(path.start, path.end)});
    return pieces;
  }
  Point cursor = path.start;
  PartitionId current = path.start_partition;
  for (std::size_t i = 0; i < path.doors.size(); ++i) {
    const Door& door = venue.door(path.doors[i]);
    // Planar approach to the door inside the current partition.
    Point door_point = door.position;
    door_point.level = cursor.level;
    pieces.push_back({cursor, door_point, current, current,
                      PlanarDistance(cursor, door_point)});
    // The partition on the far side: shared with the next door, or the
    // path's end partition at the last door.
    PartitionId next;
    if (i + 1 < path.doors.size()) {
      next = CommonPartition(door, venue.door(path.doors[i + 1]));
      if (next == kInvalidPartition) next = door.Other(current);
    } else {
      next = path.end_partition;
    }
    IFLS_DCHECK(next != kInvalidPartition);
    Point exit_point = door.position;
    exit_point.level = venue.partition(next).level();
    if (door.is_stair_door()) {
      // Dwell on the stairs for the vertical walking length.
      pieces.push_back(
          {door_point, exit_point, current, next, door.vertical_cost});
    }
    cursor = exit_point;
    current = next;
  }
  pieces.push_back({cursor, path.end, path.end_partition,
                    path.end_partition, PlanarDistance(cursor, path.end)});
  return pieces;
}

TrajectoryPoint Sample(const RoutePiece& piece, double along) {
  if (piece.length <= 0.0) return {piece.to, piece.partition_to};
  const double t = std::clamp(along / piece.length, 0.0, 1.0);
  // Stair dwell pieces keep the planar position; the level (and stairwell
  // partition) flips at the half-way point of the climb.
  if (piece.from.x == piece.to.x && piece.from.y == piece.to.y &&
      piece.partition_from != piece.partition_to) {
    return t < 0.5 ? TrajectoryPoint{piece.from, piece.partition_from}
                   : TrajectoryPoint{piece.to, piece.partition_to};
  }
  return {Point(piece.from.x + (piece.to.x - piece.from.x) * t,
                piece.from.y + (piece.to.y - piece.from.y) * t,
                piece.from.level),
          piece.partition_from};
}

Client RandomPoint(const std::vector<const Partition*>& eligible,
                   Rng* rng) {
  const Partition* p =
      eligible[static_cast<std::size_t>(rng->NextBounded(eligible.size()))];
  Client c;
  c.partition = p->id;
  c.position = Point(rng->NextUniform(p->rect.min_x, p->rect.max_x),
                     rng->NextUniform(p->rect.min_y, p->rect.max_y),
                     p->level());
  return c;
}

}  // namespace

Result<std::vector<Trajectory>> GenerateTrajectories(
    const VipTree& tree, std::size_t num_agents,
    const TrajectoryOptions& options, Rng* rng) {
  if (options.speed_mps <= 0 || options.tick_seconds <= 0 ||
      options.ticks == 0) {
    return Status::InvalidArgument("trajectory options must be positive");
  }
  IFLS_CHECK(rng != nullptr);
  const Venue& venue = tree.venue();
  std::vector<const Partition*> eligible;
  for (const Partition& p : venue.partitions()) {
    if (p.kind != PartitionKind::kStairwell) eligible.push_back(&p);
  }
  if (eligible.empty()) {
    return Status::InvalidArgument("venue has no walkable partitions");
  }
  PathReconstructor reconstructor(&tree);
  const double tick_length = options.speed_mps * options.tick_seconds;

  std::vector<Trajectory> trajectories;
  trajectories.reserve(num_agents);
  for (std::size_t agent = 0; agent < num_agents; ++agent) {
    Trajectory trajectory;
    trajectory.reserve(options.ticks);
    Client at = RandomPoint(eligible, rng);
    trajectory.push_back({at.position, at.partition});
    std::vector<RoutePiece> route;
    std::size_t piece_index = 0;
    double along = 0.0;
    int pause = 0;
    while (trajectory.size() < options.ticks) {
      if (pause > 0) {
        --pause;
        trajectory.push_back(trajectory.back());
        continue;
      }
      if (piece_index >= route.size()) {
        // Arrived (or fresh agent): maybe pause, then pick a new target.
        if (options.max_pause_ticks > 0 && rng->NextBernoulli(0.5)) {
          pause = static_cast<int>(rng->NextBounded(
              static_cast<std::uint64_t>(options.max_pause_ticks) + 1));
        }
        const Client target = RandomPoint(eligible, rng);
        IFLS_ASSIGN_OR_RETURN(
            IndoorPath path,
            reconstructor.PointToPoint(at.position, at.partition,
                                       target.position, target.partition));
        route = ExpandPath(venue, path);
        piece_index = 0;
        along = 0.0;
        continue;
      }
      // Advance one tick of walking along the route.
      double remaining = tick_length;
      while (remaining > 0 && piece_index < route.size()) {
        const RoutePiece& piece = route[piece_index];
        const double left = piece.length - along;
        if (remaining < left) {
          along += remaining;
          remaining = 0;
        } else {
          remaining -= left;
          along = 0.0;
          ++piece_index;
        }
      }
      if (piece_index < route.size()) {
        const TrajectoryPoint sample = Sample(route[piece_index], along);
        at.position = sample.position;
        at.partition = sample.partition;
      } else {
        const RoutePiece& last = route.back();
        at.position = last.to;
        at.partition = last.partition_to;
      }
      trajectory.push_back({at.position, at.partition});
    }
    trajectories.push_back(std::move(trajectory));
  }
  return trajectories;
}

}  // namespace ifls
