#ifndef IFLS_DATASETS_WORKLOAD_H_
#define IFLS_DATASETS_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/datasets/client_generator.h"
#include "src/datasets/facility_selector.h"
#include "src/datasets/presets.h"
#include "src/indoor/venue.h"

namespace ifls {

/// Full description of one experiment workload (paper Table 2 row).
struct WorkloadSpec {
  VenuePreset preset = VenuePreset::kMelbourneCentral;
  /// Real setting: Fe/Fn from the MC category split; num_existing /
  /// num_candidates are ignored.
  bool real_setting = false;
  std::string existing_category = "dining & entertainment";
  /// Synthetic setting: uniform-random facility draws of these sizes.
  std::size_t num_existing = 75;
  std::size_t num_candidates = 150;
  std::size_t num_clients = 10000;
  ClientGeneratorOptions client_options;
  std::uint64_t seed = 1;
};

/// A materialized workload. The venue is owned; index it with VipTree::Build
/// and assemble an IflsContext from the parts.
struct Workload {
  Venue venue;
  FacilitySets facilities;
  std::vector<Client> clients;
};

/// Builds venue + facilities + clients from scratch (examples, one-shot
/// runs). Benches that share a venue across repeats should instead call
/// MakeFacilities / MakeClients on a venue they keep.
Result<Workload> BuildWorkload(const WorkloadSpec& spec);

/// Draws the facility sets for `spec` on an existing venue. For the real
/// setting the venue must carry MC categories.
Result<FacilitySets> MakeFacilities(const Venue& venue,
                                    const WorkloadSpec& spec, Rng* rng);

/// Draws the client set for `spec` on an existing venue.
std::vector<Client> MakeClients(const Venue& venue, const WorkloadSpec& spec,
                                Rng* rng);

/// Paper Table 2: per-venue synthetic parameter grid. Defaults are the
/// range means, as the paper prescribes.
struct ParameterGrid {
  std::vector<std::size_t> existing_sizes;
  std::vector<std::size_t> candidate_sizes;
  std::size_t default_existing = 0;
  std::size_t default_candidates = 0;
};

ParameterGrid PresetParameterGrid(VenuePreset preset);

/// The paper's client-size sweep {1k, 5k, 10k, 15k, 20k} (default 10k) and
/// sigma sweep {0.125, 0.25, 0.5, 1, 2} (default 1).
std::vector<std::size_t> ClientSizeSweep();
std::vector<double> SigmaSweep();
inline constexpr std::size_t kDefaultClients = 10000;
inline constexpr double kDefaultSigma = 1.0;

}  // namespace ifls

#endif  // IFLS_DATASETS_WORKLOAD_H_
