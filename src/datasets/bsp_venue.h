#ifndef IFLS_DATASETS_BSP_VENUE_H_
#define IFLS_DATASETS_BSP_VENUE_H_

#include <string>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/indoor/venue.h"

namespace ifls {

/// Irregular venue generation by randomized binary space partitioning:
/// each floor is a rectangle recursively split by random axis-aligned cuts
/// into rooms of organic, varied sizes — no corridors, movement flows
/// room-to-room like in exhibition halls or open-plan markets. Doors are
/// placed on a random spanning tree of the room-adjacency graph
/// (guaranteeing connectivity) plus a configurable fraction of extra doors
/// for alternative routes; stairwells link adjacent floors.
///
/// This deliberately violates every structural assumption of the corridor
/// generator (long hub partitions, door-per-room), making it the
/// adversarial topology for the VIP-tree's node formation in the
/// robustness tests.
struct BspVenueSpec {
  std::string name = "bsp";
  int levels = 1;
  /// Approximate rooms per level (splitting stops around this count).
  int rooms_per_level = 32;
  double width = 100.0;
  double height = 80.0;
  /// Rooms narrower than this are never split further.
  double min_room_side = 4.0;
  /// Fraction of non-tree adjacent room pairs that also get a door.
  double extra_door_fraction = 0.3;
  double stair_length = 10.0;
};

/// Generates the venue deterministically from `rng`.
Result<Venue> GenerateBspVenue(const BspVenueSpec& spec, Rng* rng);

}  // namespace ifls

#endif  // IFLS_DATASETS_BSP_VENUE_H_
