#ifndef IFLS_DATASETS_VENUE_STATS_H_
#define IFLS_DATASETS_VENUE_STATS_H_

#include <string>

#include "src/common/rng.h"
#include "src/indoor/venue.h"
#include "src/index/vip_tree.h"

namespace ifls {

/// Descriptive statistics of a venue's topology and metric space; printed
/// by the Table-2 bench and used in DESIGN.md to argue the synthetic
/// replicas behave like the published venues.
struct VenueStats {
  std::size_t partitions = 0;
  std::size_t rooms = 0;
  std::size_t corridors = 0;
  std::size_t stairwells = 0;
  std::size_t doors = 0;
  std::size_t stair_doors = 0;
  int levels = 0;

  /// Doors per partition.
  double mean_degree = 0.0;
  int max_degree = 0;

  /// Walkable area (rooms + corridors), m^2.
  double walkable_area = 0.0;

  /// Pairwise indoor distance over `samples` random point pairs.
  double mean_distance = 0.0;
  double max_distance = 0.0;

  std::string ToString() const;
};

/// Computes the stats. Distance moments use `samples` random pairs drawn
/// deterministically from `seed` via the tree's exact distances.
VenueStats ComputeVenueStats(const VipTree& tree, std::size_t samples = 200,
                             std::uint64_t seed = 1);

}  // namespace ifls

#endif  // IFLS_DATASETS_VENUE_STATS_H_
