#ifndef IFLS_DATASETS_VENUE_GENERATOR_H_
#define IFLS_DATASETS_VENUE_GENERATOR_H_

#include <string>

#include "src/common/status.h"
#include "src/indoor/venue.h"

namespace ifls {

/// Parameters of the synthetic venue generator. The generator lays out each
/// level as a set of double-loaded corridors (rooms on both sides) hanging
/// off a vertical spine corridor, with stairwell partitions connecting
/// adjacent levels — the standard abstraction of mall / office floor plans
/// used by the indoor-index literature. Every venue it emits is connected
/// and passes Venue::Validate.
///
/// This substitutes for the paper's proprietary floor plans: the presets in
/// presets.h instantiate it with the published room/door/level counts of the
/// four evaluation venues (see DESIGN.md §4).
struct VenueGeneratorSpec {
  std::string name = "synthetic";
  /// Number of floors.
  int levels = 1;
  /// Exact number of room partitions per level (the last corridor is
  /// partially filled to hit it). Ignored when total_rooms > 0.
  int rooms_per_level = 40;
  /// When > 0, the exact number of rooms across the whole venue; levels get
  /// ceil/floor(total_rooms / levels) rooms so the total matches exactly
  /// (the published venue statistics are totals, e.g. MC's 298 rooms over 7
  /// levels).
  int total_rooms = 0;
  /// Rooms on one side of one corridor.
  int rooms_per_corridor_side = 10;
  double room_width = 6.0;
  double room_depth = 8.0;
  double corridor_width = 4.0;
  /// Walking length of one staircase between adjacent levels (metres).
  double stair_length = 12.0;
  /// Stairwells connecting each pair of adjacent levels.
  int stairwells = 2;
  /// Extra room-to-room doors added per level between horizontally adjacent
  /// rooms (raises the door/room ratio; CPH needs this).
  int extra_room_doors_per_level = 0;
  /// Seed for door-position jitter along shared walls; 0 = exact midpoints.
  std::uint64_t door_jitter_seed = 0;

  /// Rooms on level `level` (0-based) under the total_rooms distribution.
  int RoomsOnLevel(int level) const {
    if (total_rooms <= 0) return rooms_per_level;
    const int base = total_rooms / levels;
    const int remainder = total_rooms % levels;
    return base + (level < remainder ? 1 : 0);
  }

  /// Derived: corridors needed per level (sized for the fullest level).
  int CorridorsPerLevel() const {
    const int per_corridor = 2 * rooms_per_corridor_side;
    const int max_rooms = RoomsOnLevel(0);
    return (max_rooms + per_corridor - 1) / per_corridor;
  }
};

/// Generates the venue. Fails on non-positive dimensions/counts.
Result<Venue> GenerateVenue(const VenueGeneratorSpec& spec);

}  // namespace ifls

#endif  // IFLS_DATASETS_VENUE_GENERATOR_H_
