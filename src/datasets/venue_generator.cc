#include "src/datasets/venue_generator.h"

#include <algorithm>
#include <vector>

#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/indoor/venue_builder.h"

namespace ifls {
namespace {

/// Door placement along a wall segment [lo, hi]: midpoint, or jittered into
/// the central 60% of the wall when a jitter RNG is provided.
double PlaceOnWall(double lo, double hi, Rng* jitter) {
  if (jitter == nullptr) return (lo + hi) / 2.0;
  return lo + (hi - lo) * jitter->NextUniform(0.2, 0.8);
}

}  // namespace

Result<Venue> GenerateVenue(const VenueGeneratorSpec& spec) {
  if (spec.levels < 1 || spec.rooms_per_corridor_side < 1 ||
      (spec.total_rooms <= 0 && spec.rooms_per_level < 1)) {
    return Status::InvalidArgument("venue spec counts must be positive");
  }
  if (spec.total_rooms > 0 && spec.total_rooms < spec.levels) {
    return Status::InvalidArgument("total_rooms must cover every level");
  }
  if (spec.room_width <= 0 || spec.room_depth <= 0 ||
      spec.corridor_width <= 0 || spec.stair_length <= 0) {
    return Status::InvalidArgument("venue spec dimensions must be positive");
  }
  if (spec.levels > 1 && spec.stairwells < 1) {
    return Status::InvalidArgument(
        "multi-level venues need at least one stairwell");
  }

  Rng jitter_rng(spec.door_jitter_seed);
  Rng* jitter = spec.door_jitter_seed != 0 ? &jitter_rng : nullptr;

  const double rw = spec.room_width;
  const double rd = spec.room_depth;
  const double cw = spec.corridor_width;
  const int side = spec.rooms_per_corridor_side;
  const int corridors = spec.CorridorsPerLevel();
  const int stairwells =
      spec.levels > 1 ? std::min(spec.stairwells, corridors) : 0;
  const double block_height = 2.0 * rd + cw;  // rooms + corridor + rooms
  const double wing_x0 = cw;                  // rooms start right of spine
  const double wing_x1 = cw + side * rw;
  const double stair_w = cw;

  VenueBuilder builder(spec.name);

  // Per-level bookkeeping for stair linkage.
  std::vector<std::vector<PartitionId>> stairs_by_level(
      static_cast<std::size_t>(spec.levels));

  for (int level = 0; level < spec.levels; ++level) {
    const Level lv = static_cast<Level>(level);
    const double total_height = corridors * block_height;
    const PartitionId spine = builder.AddPartition(
        Rect(0.0, 0.0, cw, total_height, lv), PartitionKind::kCorridor);

    int rooms_left = spec.RoomsOnLevel(level);
    for (int c = 0; c < corridors; ++c) {
      const double y0 = c * block_height;
      const double cy0 = y0 + rd;
      const double cy1 = cy0 + cw;
      const PartitionId corridor = builder.AddPartition(
          Rect(wing_x0, cy0, wing_x1, cy1, lv), PartitionKind::kCorridor);
      // Spine <-> corridor door on the shared wall x = cw.
      builder.AddDoor(spine, corridor,
                      Point(cw, PlaceOnWall(cy0, cy1, jitter), lv));

      // Bottom row, then top row, left to right.
      std::vector<PartitionId> bottom_row;
      std::vector<PartitionId> top_row;
      for (int row = 0; row < 2 && rooms_left > 0; ++row) {
        for (int j = 0; j < side && rooms_left > 0; ++j, --rooms_left) {
          const double x0 = wing_x0 + j * rw;
          const double x1 = x0 + rw;
          Rect rect = row == 0 ? Rect(x0, y0, x1, cy0, lv)
                               : Rect(x0, cy1, x1, y0 + block_height, lv);
          const PartitionId room =
              builder.AddPartition(rect, PartitionKind::kRoom);
          const double wall_y = row == 0 ? cy0 : cy1;
          builder.AddDoor(room, corridor,
                          Point(PlaceOnWall(x0, x1, jitter), wall_y, lv));
          (row == 0 ? bottom_row : top_row).push_back(room);
        }
      }

      // Extra room-to-room doors (shared vertical walls), round-robin over
      // both rows until the per-level budget is spent; budget is split
      // evenly across corridors.
      int extra = spec.extra_room_doors_per_level / corridors +
                  (c < spec.extra_room_doors_per_level % corridors ? 1 : 0);
      for (const auto* row : {&bottom_row, &top_row}) {
        for (std::size_t j = 0; extra > 0 && j + 1 < row->size();
             ++j, --extra) {
          const Rect& a = builder.partition((*row)[j]).rect;
          builder.AddDoor(
              (*row)[j], (*row)[j + 1],
              Point(a.max_x, PlaceOnWall(a.min_y, a.max_y, jitter), lv));
        }
      }

      // Stairwell hanging off the right end of the first `stairwells`
      // corridors.
      if (c < stairwells) {
        const PartitionId stair = builder.AddPartition(
            Rect(wing_x1, cy0, wing_x1 + stair_w, cy1, lv),
            PartitionKind::kStairwell);
        builder.AddDoor(stair, corridor,
                        Point(wing_x1, PlaceOnWall(cy0, cy1, jitter), lv));
        stairs_by_level[static_cast<std::size_t>(level)].push_back(stair);
      }
    }
    IFLS_CHECK(rooms_left == 0)
        << "corridor capacity too small for rooms_per_level";
  }

  // Vertical stair doors between stacked stairwells of adjacent levels.
  for (int level = 0; level + 1 < spec.levels; ++level) {
    const auto& lower = stairs_by_level[static_cast<std::size_t>(level)];
    const auto& upper = stairs_by_level[static_cast<std::size_t>(level + 1)];
    IFLS_CHECK(lower.size() == upper.size());
    for (std::size_t s = 0; s < lower.size(); ++s) {
      const Rect& r = builder.partition(lower[s]).rect;
      builder.AddStairDoor(lower[s], upper[s], r.center(), spec.stair_length);
    }
  }

  return builder.Build();
}

}  // namespace ifls
