#ifndef IFLS_DATASETS_TRAJECTORY_GENERATOR_H_
#define IFLS_DATASETS_TRAJECTORY_GENERATOR_H_

#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/index/path.h"
#include "src/index/vip_tree.h"

namespace ifls {

/// Random-waypoint mobility over a venue: each agent repeatedly picks a
/// random destination (uniform over rooms and corridors), walks there along
/// the exact shortest indoor route at constant speed — through doors, along
/// stairs — and picks the next destination. Positions are sampled at fixed
/// tick intervals. Feeds the continuous-IFLS monitor and the dynamic-crowd
/// example with physically plausible movement.
struct TrajectoryOptions {
  /// Walking speed (default: average pedestrian).
  double speed_mps = 1.4;
  /// Sampling interval.
  double tick_seconds = 1.0;
  /// Samples per agent (the first is the start position).
  std::size_t ticks = 60;
  /// Agents may pause at a reached destination for up to this many ticks.
  int max_pause_ticks = 3;
};

/// One sampled position. The partition is always consistent with the
/// position (inside it, stair dwells included).
struct TrajectoryPoint {
  Point position;
  PartitionId partition = kInvalidPartition;
};

using Trajectory = std::vector<TrajectoryPoint>;

/// Generates `num_agents` trajectories of `options.ticks` samples each,
/// deterministically from `rng`.
Result<std::vector<Trajectory>> GenerateTrajectories(
    const VipTree& tree, std::size_t num_agents,
    const TrajectoryOptions& options, Rng* rng);

}  // namespace ifls

#endif  // IFLS_DATASETS_TRAJECTORY_GENERATOR_H_
