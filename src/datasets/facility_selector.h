#ifndef IFLS_DATASETS_FACILITY_SELECTOR_H_
#define IFLS_DATASETS_FACILITY_SELECTOR_H_

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/indoor/venue.h"

namespace ifls {

/// A disjoint (Fe, Fn) pair of facility partitions.
struct FacilitySets {
  std::vector<PartitionId> existing;
  std::vector<PartitionId> candidates;
};

/// Synthetic setting (paper §6.1.1): draws |Fe| existing facilities and
/// |Fn| candidate locations uniformly at random from the venue's rooms,
/// without replacement and mutually disjoint.
Result<FacilitySets> SelectUniformFacilities(const Venue& venue,
                                             std::size_t num_existing,
                                             std::size_t num_candidates,
                                             Rng* rng);

/// Real setting (paper §6.1.2): partitions of `existing_category` become Fe
/// and every other *categorized* partition becomes Fn. Requires categories
/// assigned (AssignMelbourneCentralCategories).
Result<FacilitySets> SelectCategoryFacilities(
    const Venue& venue, const std::string& existing_category);

}  // namespace ifls

#endif  // IFLS_DATASETS_FACILITY_SELECTOR_H_
