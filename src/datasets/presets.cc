#include "src/datasets/presets.h"

#include "src/common/logging.h"

namespace ifls {

const char* VenuePresetName(VenuePreset preset) {
  switch (preset) {
    case VenuePreset::kMelbourneCentral:
      return "MC";
    case VenuePreset::kChadstone:
      return "CH";
    case VenuePreset::kCopenhagenAirport:
      return "CPH";
    case VenuePreset::kMenziesBuilding:
      return "MZB";
  }
  return "?";
}

std::vector<VenuePreset> AllVenuePresets() {
  return {VenuePreset::kMelbourneCentral, VenuePreset::kChadstone,
          VenuePreset::kCopenhagenAirport, VenuePreset::kMenziesBuilding};
}

VenueGeneratorSpec PresetSpec(VenuePreset preset) {
  VenueGeneratorSpec spec;
  switch (preset) {
    case VenuePreset::kMelbourneCentral:
      // 298 rooms / 299 doors / 7 levels: one long double-loaded corridor
      // per level.
      spec.name = "MC";
      spec.levels = 7;
      spec.total_rooms = 298;
      spec.rooms_per_corridor_side = 22;
      spec.room_width = 8.0;
      spec.room_depth = 10.0;
      spec.corridor_width = 5.0;
      spec.stairwells = 1;
      spec.stair_length = 14.0;
      break;
    case VenuePreset::kChadstone:
      // 679 rooms / 678 doors / 4 levels: Australia's largest mall.
      spec.name = "CH";
      spec.levels = 4;
      spec.total_rooms = 679;
      spec.rooms_per_corridor_side = 40;
      spec.room_width = 9.0;
      spec.room_depth = 12.0;
      spec.corridor_width = 6.0;
      spec.stairwells = 2;
      spec.stair_length = 16.0;
      break;
    case VenuePreset::kCopenhagenAirport:
      // 76 rooms / 118 doors, single 2000 m x 600 m floor. Extra
      // room-to-room doors hit the published door count exactly
      // (76 + 2 corridors + 40 extra = 118).
      spec.name = "CPH";
      spec.levels = 1;
      spec.total_rooms = 76;
      spec.rooms_per_corridor_side = 19;
      spec.room_width = 100.0;
      spec.room_depth = 130.0;
      spec.corridor_width = 40.0;
      spec.stairwells = 0;
      spec.extra_room_doors_per_level = 40;
      break;
    case VenuePreset::kMenziesBuilding:
      // 1344 rooms / 1375 doors / 16 levels: an office/teaching tower.
      spec.name = "MZB";
      spec.levels = 16;
      spec.total_rooms = 1344;
      spec.rooms_per_corridor_side = 21;
      spec.room_width = 5.0;
      spec.room_depth = 6.0;
      spec.corridor_width = 3.0;
      spec.stairwells = 2;
      spec.stair_length = 11.0;
      break;
  }
  return spec;
}

Result<Venue> BuildPresetVenue(VenuePreset preset) {
  return GenerateVenue(PresetSpec(preset));
}

std::vector<McCategory> MelbourneCentralCategories() {
  // The five categories the paper names, with its exact cardinalities, plus
  // "general retail" absorbing the rest of the 291 categorized partitions
  // (Fe + Fn always total 291 in the paper's Table 2).
  return {
      {"fashion & accessories", 101}, {"dining & entertainment", 54},
      {"health & beauty", 39},        {"fresh food", 19},
      {"banks & services", 14},       {"general retail", 64},
  };
}

Status AssignMelbourneCentralCategories(Venue* venue) {
  if (venue == nullptr) {
    return Status::InvalidArgument("venue must not be null");
  }
  // Rooms in id order follow the generator's level -> corridor -> row -> x
  // sweep, so contiguous id blocks are spatially clustered, matching how
  // mall tenants of one category co-locate.
  std::vector<PartitionId> rooms;
  for (const Partition& p : venue->partitions()) {
    if (p.kind == PartitionKind::kRoom) rooms.push_back(p.id);
  }
  const auto categories = MelbourneCentralCategories();
  std::size_t needed = 0;
  for (const McCategory& c : categories) {
    needed += static_cast<std::size_t>(c.count);
  }
  if (rooms.size() < needed) {
    return Status::InvalidArgument(
        "venue has too few rooms for the MC category map (need " +
        std::to_string(needed) + ", have " + std::to_string(rooms.size()) +
        ")");
  }
  std::size_t next = 0;
  for (const McCategory& c : categories) {
    for (int i = 0; i < c.count; ++i) {
      venue->SetCategory(rooms[next++], c.name);
    }
  }
  return Status::OK();
}

}  // namespace ifls
