#include "src/datasets/facility_selector.h"

#include "src/common/logging.h"

namespace ifls {

Result<FacilitySets> SelectUniformFacilities(const Venue& venue,
                                             std::size_t num_existing,
                                             std::size_t num_candidates,
                                             Rng* rng) {
  IFLS_CHECK(rng != nullptr);
  std::vector<PartitionId> rooms;
  for (const Partition& p : venue.partitions()) {
    if (p.kind == PartitionKind::kRoom) rooms.push_back(p.id);
  }
  if (rooms.size() < num_existing + num_candidates) {
    return Status::InvalidArgument(
        "venue has only " + std::to_string(rooms.size()) +
        " rooms; cannot draw " + std::to_string(num_existing) + " + " +
        std::to_string(num_candidates) + " facilities");
  }
  const std::vector<std::size_t> picks =
      rng->SampleWithoutReplacement(rooms.size(),
                                    num_existing + num_candidates);
  FacilitySets sets;
  sets.existing.reserve(num_existing);
  sets.candidates.reserve(num_candidates);
  for (std::size_t i = 0; i < num_existing; ++i) {
    sets.existing.push_back(rooms[picks[i]]);
  }
  for (std::size_t i = num_existing; i < picks.size(); ++i) {
    sets.candidates.push_back(rooms[picks[i]]);
  }
  return sets;
}

Result<FacilitySets> SelectCategoryFacilities(
    const Venue& venue, const std::string& existing_category) {
  FacilitySets sets;
  bool category_seen = false;
  for (const Partition& p : venue.partitions()) {
    if (p.category.empty()) continue;
    if (p.category == existing_category) {
      sets.existing.push_back(p.id);
      category_seen = true;
    } else {
      sets.candidates.push_back(p.id);
    }
  }
  if (!category_seen) {
    return Status::NotFound("no partitions carry category '" +
                            existing_category + "'");
  }
  return sets;
}

}  // namespace ifls
