#include "src/graph/door_graph.h"

#include "src/common/logging.h"

namespace ifls {

DoorGraph::DoorGraph(const Venue& venue) {
  const std::size_t n = venue.num_doors();
  std::vector<std::size_t> degree(n, 0);
  for (const Partition& p : venue.partitions()) {
    const std::size_t k = p.doors.size();
    if (k < 2) continue;
    for (DoorId d : p.doors) degree[static_cast<std::size_t>(d)] += k - 1;
  }
  offsets_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) offsets_[i + 1] = offsets_[i] + degree[i];
  edges_.resize(offsets_[n]);

  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Partition& p : venue.partitions()) {
    const auto& doors = p.doors;
    for (std::size_t i = 0; i < doors.size(); ++i) {
      for (std::size_t j = 0; j < doors.size(); ++j) {
        if (i == j) continue;
        const Door& from = venue.door(doors[i]);
        const Door& to = venue.door(doors[j]);
        Edge e;
        e.to = to.id;
        e.via = p.id;
        e.weight = DoorToDoorIntraDistance(from, to);
        edges_[cursor[static_cast<std::size_t>(from.id)]++] = e;
      }
    }
  }
}

}  // namespace ifls
