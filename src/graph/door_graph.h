#ifndef IFLS_GRAPH_DOOR_GRAPH_H_
#define IFLS_GRAPH_DOOR_GRAPH_H_

#include <cstdint>
#include <vector>

#include "src/indoor/venue.h"

namespace ifls {

/// Door-to-door graph of a venue (Yang et al.'s doors graph): vertices are
/// doors; an undirected edge joins two doors that lie on the same partition,
/// weighted by the intra-partition walking distance (planar leg plus stair
/// vertical costs). Stored as CSR for cache-friendly Dijkstra.
class DoorGraph {
 public:
  struct Edge {
    DoorId to = kInvalidDoor;
    /// Partition crossed by this edge (both doors belong to it).
    PartitionId via = kInvalidPartition;
    double weight = 0.0;
  };

  explicit DoorGraph(const Venue& venue);

  std::size_t num_doors() const { return offsets_.size() - 1; }
  std::size_t num_edges() const { return edges_.size(); }

  /// Outgoing edges of door `d`.
  const Edge* EdgesBegin(DoorId d) const {
    return edges_.data() + offsets_[static_cast<std::size_t>(d)];
  }
  const Edge* EdgesEnd(DoorId d) const {
    return edges_.data() + offsets_[static_cast<std::size_t>(d) + 1];
  }

 private:
  std::vector<std::size_t> offsets_;  // size num_doors + 1
  std::vector<Edge> edges_;
};

}  // namespace ifls

#endif  // IFLS_GRAPH_DOOR_GRAPH_H_
