#ifndef IFLS_GRAPH_DIJKSTRA_H_
#define IFLS_GRAPH_DIJKSTRA_H_

#include <limits>
#include <vector>

#include "src/graph/door_graph.h"

namespace ifls {

inline constexpr double kInfDistance = std::numeric_limits<double>::infinity();

/// Result of a single-source shortest-path run over the door graph.
struct ShortestPaths {
  /// distance[d] = shortest walking distance source -> d; kInfDistance when
  /// unreachable.
  std::vector<double> distance;
  /// first_hop[d] = first door after the source on a shortest path to d
  /// (== d when d is the source's direct neighbor; kInvalidDoor for the
  /// source itself and unreachable doors). This is what VIP-tree matrices
  /// store alongside every distance entry.
  std::vector<DoorId> first_hop;
  /// predecessor[d] = previous door on the shortest path (kInvalidDoor for
  /// source/unreachable). Enables full path reconstruction.
  std::vector<DoorId> predecessor;
};

/// Full single-source Dijkstra from `source` over all doors.
ShortestPaths SingleSourceShortestPaths(const DoorGraph& graph, DoorId source);

/// Dijkstra that stops once every door in `targets` is settled (or the
/// frontier is exhausted). Useful for sparse matrix rows.
ShortestPaths ShortestPathsToTargets(const DoorGraph& graph, DoorId source,
                                     const std::vector<DoorId>& targets);

/// Reconstructs the door sequence source -> target (inclusive) from a
/// ShortestPaths result; empty when unreachable.
std::vector<DoorId> ReconstructPath(const ShortestPaths& paths, DoorId source,
                                    DoorId target);

}  // namespace ifls

#endif  // IFLS_GRAPH_DIJKSTRA_H_
