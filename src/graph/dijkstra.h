#ifndef IFLS_GRAPH_DIJKSTRA_H_
#define IFLS_GRAPH_DIJKSTRA_H_

#include <limits>
#include <vector>

#include "src/graph/door_graph.h"

namespace ifls {

inline constexpr double kInfDistance = std::numeric_limits<double>::infinity();

/// Result of a single-source shortest-path run over the door graph.
struct ShortestPaths {
  /// distance[d] = shortest walking distance source -> d; kInfDistance when
  /// unreachable.
  std::vector<double> distance;
  /// first_hop[d] = first door after the source on a shortest path to d
  /// (== d when d is the source's direct neighbor; kInvalidDoor for the
  /// source itself and unreachable doors). This is what VIP-tree matrices
  /// store alongside every distance entry.
  std::vector<DoorId> first_hop;
  /// predecessor[d] = previous door on the shortest path (kInvalidDoor for
  /// source/unreachable). Enables full path reconstruction.
  std::vector<DoorId> predecessor;
};

/// Binary-heap entry of a Dijkstra run. Ordered by distance only, exactly
/// like the original std::priority_queue-based implementation, so tie
/// handling (and therefore first_hop/predecessor choices) is unchanged.
struct DijkstraHeapEntry {
  double dist = 0.0;
  DoorId door = kInvalidDoor;
};

/// Reusable output + scratch buffers for Dijkstra runs. One workspace per
/// worker thread (hand them out with WorkspacePool) makes repeated runs
/// allocation-free after warmup: every vector keeps its capacity between
/// runs. A workspace must not be shared by concurrent runs.
struct DijkstraWorkspace {
  /// Output of the most recent run through this workspace.
  ShortestPaths paths;
  std::vector<char> settled;
  std::vector<char> is_target;
  std::vector<DijkstraHeapEntry> heap;
};

/// Full single-source Dijkstra from `source` over all doors.
ShortestPaths SingleSourceShortestPaths(const DoorGraph& graph, DoorId source);

/// Dijkstra that stops once every door in `targets` is settled (or the
/// frontier is exhausted). Useful for sparse matrix rows.
ShortestPaths ShortestPathsToTargets(const DoorGraph& graph, DoorId source,
                                     const std::vector<DoorId>& targets);

/// Workspace-reusing variants: identical results, but the run borrows the
/// workspace's buffers and returns a reference to `workspace->paths`
/// (invalidated by the workspace's next run).
const ShortestPaths& SingleSourceShortestPaths(const DoorGraph& graph,
                                               DoorId source,
                                               DijkstraWorkspace* workspace);
const ShortestPaths& ShortestPathsToTargets(const DoorGraph& graph,
                                            DoorId source,
                                            const std::vector<DoorId>& targets,
                                            DijkstraWorkspace* workspace);

/// Reconstructs the door sequence source -> target (inclusive) from a
/// ShortestPaths result; empty when unreachable.
std::vector<DoorId> ReconstructPath(const ShortestPaths& paths, DoorId source,
                                    DoorId target);

}  // namespace ifls

#endif  // IFLS_GRAPH_DIJKSTRA_H_
