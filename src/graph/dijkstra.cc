#include "src/graph/dijkstra.h"

#include <algorithm>
#include <queue>

#include "src/common/logging.h"

namespace ifls {
namespace {

struct QueueEntry {
  double dist;
  DoorId door;
  bool operator>(const QueueEntry& other) const { return dist > other.dist; }
};

ShortestPaths RunDijkstra(const DoorGraph& graph, DoorId source,
                          const std::vector<DoorId>* targets) {
  const std::size_t n = graph.num_doors();
  IFLS_CHECK(source >= 0 && static_cast<std::size_t>(source) < n);

  ShortestPaths out;
  out.distance.assign(n, kInfDistance);
  out.first_hop.assign(n, kInvalidDoor);
  out.predecessor.assign(n, kInvalidDoor);

  std::vector<char> settled(n, 0);
  std::size_t remaining_targets = 0;
  std::vector<char> is_target;
  if (targets != nullptr) {
    is_target.assign(n, 0);
    for (DoorId t : *targets) {
      if (!is_target[static_cast<std::size_t>(t)]) {
        is_target[static_cast<std::size_t>(t)] = 1;
        ++remaining_targets;
      }
    }
  }

  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue;
  out.distance[static_cast<std::size_t>(source)] = 0.0;
  queue.push({0.0, source});

  while (!queue.empty()) {
    const QueueEntry top = queue.top();
    queue.pop();
    const std::size_t u = static_cast<std::size_t>(top.door);
    if (settled[u]) continue;
    settled[u] = 1;
    if (targets != nullptr && is_target[u]) {
      if (--remaining_targets == 0) break;
    }
    for (const DoorGraph::Edge* e = graph.EdgesBegin(top.door);
         e != graph.EdgesEnd(top.door); ++e) {
      const std::size_t v = static_cast<std::size_t>(e->to);
      const double cand = top.dist + e->weight;
      if (cand < out.distance[v]) {
        out.distance[v] = cand;
        out.predecessor[v] = top.door;
        out.first_hop[v] =
            top.door == source ? e->to : out.first_hop[u];
        queue.push({cand, e->to});
      }
    }
  }
  return out;
}

}  // namespace

ShortestPaths SingleSourceShortestPaths(const DoorGraph& graph,
                                        DoorId source) {
  return RunDijkstra(graph, source, nullptr);
}

ShortestPaths ShortestPathsToTargets(const DoorGraph& graph, DoorId source,
                                     const std::vector<DoorId>& targets) {
  return RunDijkstra(graph, source, &targets);
}

std::vector<DoorId> ReconstructPath(const ShortestPaths& paths, DoorId source,
                                    DoorId target) {
  std::vector<DoorId> path;
  if (target < 0 ||
      static_cast<std::size_t>(target) >= paths.distance.size() ||
      paths.distance[static_cast<std::size_t>(target)] == kInfDistance) {
    return path;
  }
  for (DoorId cur = target; cur != kInvalidDoor;
       cur = paths.predecessor[static_cast<std::size_t>(cur)]) {
    path.push_back(cur);
    if (cur == source) break;
  }
  std::reverse(path.begin(), path.end());
  if (path.empty() || path.front() != source) return {};
  return path;
}

}  // namespace ifls
