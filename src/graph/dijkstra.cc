#include "src/graph/dijkstra.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"

namespace ifls {
namespace {

/// Min-heap order by distance only (matches the former priority_queue's
/// comparator, so equal-distance pops settle in the same order and the
/// reported first hops / predecessors are bit-identical).
bool HeapGreater(const DijkstraHeapEntry& a, const DijkstraHeapEntry& b) {
  return a.dist > b.dist;
}

/// The core run, writing into the workspace. std::push_heap/pop_heap over
/// the workspace's vector is exactly what std::priority_queue does
/// internally, minus the per-run container allocation.
void RunDijkstra(const DoorGraph& graph, DoorId source,
                 const std::vector<DoorId>* targets,
                 DijkstraWorkspace* ws) {
  const std::size_t n = graph.num_doors();
  IFLS_CHECK(source >= 0 && static_cast<std::size_t>(source) < n);

  ShortestPaths& out = ws->paths;
  out.distance.assign(n, kInfDistance);
  out.first_hop.assign(n, kInvalidDoor);
  out.predecessor.assign(n, kInvalidDoor);

  ws->settled.assign(n, 0);
  std::vector<char>& settled = ws->settled;
  std::size_t remaining_targets = 0;
  if (targets != nullptr) {
    ws->is_target.assign(n, 0);
    for (DoorId t : *targets) {
      if (!ws->is_target[static_cast<std::size_t>(t)]) {
        ws->is_target[static_cast<std::size_t>(t)] = 1;
        ++remaining_targets;
      }
    }
  }

  std::vector<DijkstraHeapEntry>& queue = ws->heap;
  queue.clear();
  out.distance[static_cast<std::size_t>(source)] = 0.0;
  queue.push_back({0.0, source});

  while (!queue.empty()) {
    const DijkstraHeapEntry top = queue.front();
    std::pop_heap(queue.begin(), queue.end(), HeapGreater);
    queue.pop_back();
    const std::size_t u = static_cast<std::size_t>(top.door);
    if (settled[u]) continue;
    settled[u] = 1;
    if (targets != nullptr && ws->is_target[u]) {
      if (--remaining_targets == 0) break;
    }
    for (const DoorGraph::Edge* e = graph.EdgesBegin(top.door);
         e != graph.EdgesEnd(top.door); ++e) {
      const std::size_t v = static_cast<std::size_t>(e->to);
      const double cand = top.dist + e->weight;
      if (cand < out.distance[v]) {
        out.distance[v] = cand;
        out.predecessor[v] = top.door;
        out.first_hop[v] =
            top.door == source ? e->to : out.first_hop[u];
        queue.push_back({cand, e->to});
        std::push_heap(queue.begin(), queue.end(), HeapGreater);
      }
    }
  }
}

}  // namespace

ShortestPaths SingleSourceShortestPaths(const DoorGraph& graph,
                                        DoorId source) {
  DijkstraWorkspace ws;
  RunDijkstra(graph, source, nullptr, &ws);
  return std::move(ws.paths);
}

ShortestPaths ShortestPathsToTargets(const DoorGraph& graph, DoorId source,
                                     const std::vector<DoorId>& targets) {
  DijkstraWorkspace ws;
  RunDijkstra(graph, source, &targets, &ws);
  return std::move(ws.paths);
}

const ShortestPaths& SingleSourceShortestPaths(const DoorGraph& graph,
                                               DoorId source,
                                               DijkstraWorkspace* workspace) {
  RunDijkstra(graph, source, nullptr, workspace);
  return workspace->paths;
}

const ShortestPaths& ShortestPathsToTargets(
    const DoorGraph& graph, DoorId source,
    const std::vector<DoorId>& targets, DijkstraWorkspace* workspace) {
  RunDijkstra(graph, source, &targets, workspace);
  return workspace->paths;
}

std::vector<DoorId> ReconstructPath(const ShortestPaths& paths, DoorId source,
                                    DoorId target) {
  std::vector<DoorId> path;
  if (target < 0 ||
      static_cast<std::size_t>(target) >= paths.distance.size() ||
      paths.distance[static_cast<std::size_t>(target)] == kInfDistance) {
    return path;
  }
  for (DoorId cur = target; cur != kInvalidDoor;
       cur = paths.predecessor[static_cast<std::size_t>(cur)]) {
    path.push_back(cur);
    if (cur == source) break;
  }
  std::reverse(path.begin(), path.end());
  if (path.empty() || path.front() != source) return {};
  return path;
}

}  // namespace ifls
