#ifndef IFLS_GRAPH_ACCESSIBILITY_MODEL_H_
#define IFLS_GRAPH_ACCESSIBILITY_MODEL_H_

#include "src/graph/dijkstra.h"
#include "src/graph/door_graph.h"
#include "src/indoor/venue.h"

namespace ifls {

/// The distance-aware accessibility model of Lu, Cao and Jensen (ICDE'12),
/// which the paper's §4 adapts and argues against: the indoor topology is a
/// graph (partitions connected through doors, with door-to-door distance
/// mappings) and every distance query runs a fresh graph expansion — no
/// materialized matrices. This is the "model the indoor space as a graph"
/// comparator for the index micro benchmarks; it answers exactly the same
/// distances as the VIP-tree, just slower per query (expansions instead of
/// lookups) and with no build cost.
class AccessibilityModel {
 public:
  /// The venue must outlive the model.
  explicit AccessibilityModel(const Venue* venue);

  const Venue& venue() const { return *venue_; }

  /// Exact indoor distance between two points: a Dijkstra expansion from
  /// the source partition's doors, early-terminated at the target's doors.
  double PointToPoint(const Point& a, PartitionId pa, const Point& b,
                      PartitionId pb) const;

  /// Exact indoor distance from a point to partition `target`.
  double PointToPartition(const Point& a, PartitionId pa,
                          PartitionId target) const;

  /// Graph expansions run so far (each is one Dijkstra).
  std::size_t num_expansions() const { return num_expansions_; }

 private:
  /// Multi-source expansion: seeds every door of `pa` with the point's
  /// local leg, stops when all of `targets` are settled, and returns the
  /// best total over `targets` plus their point legs.
  double Expand(const Point& a, PartitionId pa,
                const std::vector<DoorId>& targets,
                const std::vector<double>& target_legs) const;

  const Venue* venue_;
  DoorGraph graph_;
  mutable std::size_t num_expansions_ = 0;
};

}  // namespace ifls

#endif  // IFLS_GRAPH_ACCESSIBILITY_MODEL_H_
