#include "src/graph/accessibility_model.h"

#include <queue>

#include "src/common/logging.h"

namespace ifls {

AccessibilityModel::AccessibilityModel(const Venue* venue)
    : venue_(venue), graph_(*venue) {
  IFLS_CHECK(venue != nullptr);
}

double AccessibilityModel::Expand(const Point& a, PartitionId pa,
                                  const std::vector<DoorId>& targets,
                                  const std::vector<double>& target_legs) const {
  ++num_expansions_;
  const std::size_t n = graph_.num_doors();
  std::vector<double> dist(n, kInfDistance);
  std::vector<char> settled(n, 0);

  struct Entry {
    double dist;
    DoorId door;
    bool operator>(const Entry& other) const { return dist > other.dist; }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  for (DoorId d : venue_->partition(pa).doors) {
    const double leg = PointToDoorDistance(a, venue_->door(d));
    if (leg < dist[static_cast<std::size_t>(d)]) {
      dist[static_cast<std::size_t>(d)] = leg;
      queue.push({leg, d});
    }
  }
  std::vector<char> is_target(n, 0);
  std::size_t remaining = 0;
  double best = kInfDistance;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const auto t = static_cast<std::size_t>(targets[i]);
    if (!is_target[t]) {
      is_target[t] = 1;
      ++remaining;
    }
  }
  while (!queue.empty() && remaining > 0) {
    const Entry top = queue.top();
    queue.pop();
    const auto u = static_cast<std::size_t>(top.door);
    if (settled[u]) continue;
    settled[u] = 1;
    if (is_target[u]) --remaining;
    for (const DoorGraph::Edge* e = graph_.EdgesBegin(top.door);
         e != graph_.EdgesEnd(top.door); ++e) {
      const auto v = static_cast<std::size_t>(e->to);
      const double cand = top.dist + e->weight;
      if (cand < dist[v]) {
        dist[v] = cand;
        queue.push({cand, e->to});
      }
    }
  }
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const auto t = static_cast<std::size_t>(targets[i]);
    best = std::min(best, dist[t] + target_legs[i]);
  }
  return best;
}

double AccessibilityModel::PointToPoint(const Point& a, PartitionId pa,
                                        const Point& b,
                                        PartitionId pb) const {
  if (pa == pb) return PlanarDistance(a, b);
  std::vector<DoorId> targets;
  std::vector<double> legs;
  for (DoorId d : venue_->partition(pb).doors) {
    targets.push_back(d);
    legs.push_back(PointToDoorDistance(b, venue_->door(d)));
  }
  return Expand(a, pa, targets, legs);
}

double AccessibilityModel::PointToPartition(const Point& a, PartitionId pa,
                                            PartitionId target) const {
  if (pa == target) return 0.0;
  std::vector<DoorId> targets;
  std::vector<double> legs;
  for (DoorId d : venue_->partition(target).doors) {
    targets.push_back(d);
    legs.push_back(0.0);
  }
  return Expand(a, pa, targets, legs);
}

}  // namespace ifls
