# CPU-feature build infrastructure for the min-plus kernel tiers
# (DESIGN.md §9). Each ISA backend lives in its own translation unit under
# src/index/kernels/ and is compiled with a per-file -m<isa> flag — the rest
# of the project keeps the baseline ISA, so one binary still runs on any
# x86-64 machine and the right tier is chosen at runtime from cpuid.
#
# Per tier this module:
#   1. exposes an IFLS_KERNEL_<TIER> option (default ON) to opt a backend
#      out of the build entirely;
#   2. probes whether the compiler accepts the tier's flag
#      (check_cxx_compiler_flag), skipping the probe off x86-64;
#   3. when both hold, sets IFLS_KERNEL_TIER_<TIER> and defines the
#      project-wide IFLS_HAVE_<TIER> guard that kernel_table.h / dispatch.cc
#      key their declarations and choose-best ladder on.
#
# src/CMakeLists.txt consumes IFLS_KERNEL_TIER_<TIER> to add each enabled
# minplus_<tier>.cc with its IFLS_KERNEL_TIER_<TIER>_FLAGS. Adding a tier =
# one ifls_probe_kernel_tier() line here, one conditional source block
# there, one table TU, one dispatch.cc case.
#
# The scalar reference backend has no entry here: it is always compiled,
# with no extra flags, and is the guaranteed fallback on every platform.

include(CheckCXXCompilerFlag)

option(IFLS_KERNEL_SSE4 "Compile the SSE4.2 min-plus kernel backend" ON)
option(IFLS_KERNEL_AVX2 "Compile the AVX2 min-plus kernel backend" ON)
option(IFLS_KERNEL_AVX512F "Compile the AVX-512F min-plus kernel backend" ON)

# The pre-multi-tier switch compiled scalar+AVX2 from one TU. Keep old
# configure lines working: IFLS_KERNEL_SIMD=OFF now means "scalar only".
if(DEFINED IFLS_KERNEL_SIMD)
  message(WARNING "IFLS_KERNEL_SIMD is deprecated; use IFLS_KERNEL_SSE4/"
                  "AVX2/AVX512F per-tier options instead")
  if(NOT IFLS_KERNEL_SIMD)
    set(IFLS_KERNEL_SSE4 OFF)
    set(IFLS_KERNEL_AVX2 OFF)
    set(IFLS_KERNEL_AVX512F OFF)
  endif()
  # Drop the cached entry so the warning fires once per explicit use, not on
  # every reconfigure of a build tree that predates the tier options.
  unset(IFLS_KERNEL_SIMD CACHE)
endif()

if(CMAKE_SYSTEM_PROCESSOR MATCHES "^(x86_64|amd64|AMD64)$")
  set(IFLS_KERNEL_X86_64 TRUE)
else()
  set(IFLS_KERNEL_X86_64 FALSE)
endif()

# ifls_probe_kernel_tier(<TIER> <flag>): sets IFLS_KERNEL_TIER_<TIER> and
# IFLS_KERNEL_TIER_<TIER>_FLAGS, and defines IFLS_HAVE_<TIER> when the tier
# is opted in, the host is x86-64 and the compiler accepts <flag>.
function(ifls_probe_kernel_tier tier flag)
  set(IFLS_KERNEL_TIER_${tier} FALSE PARENT_SCOPE)
  if(NOT IFLS_KERNEL_${tier})
    message(STATUS "ifls kernels: ${tier} tier disabled (IFLS_KERNEL_${tier}=OFF)")
    return()
  endif()
  if(NOT IFLS_KERNEL_X86_64)
    message(STATUS "ifls kernels: ${tier} tier skipped (non-x86-64 target "
                   "'${CMAKE_SYSTEM_PROCESSOR}')")
    return()
  endif()
  check_cxx_compiler_flag("${flag}" IFLS_COMPILER_HAS_${tier})
  if(NOT IFLS_COMPILER_HAS_${tier})
    message(STATUS "ifls kernels: ${tier} tier skipped (compiler rejects ${flag})")
    return()
  endif()
  set(IFLS_KERNEL_TIER_${tier} TRUE PARENT_SCOPE)
  set(IFLS_KERNEL_TIER_${tier}_FLAGS "${flag}" PARENT_SCOPE)
  add_compile_definitions(IFLS_HAVE_${tier})
  message(STATUS "ifls kernels: ${tier} tier enabled (${flag})")
endfunction()

ifls_probe_kernel_tier(SSE4 "-msse4.2")
ifls_probe_kernel_tier(AVX2 "-mavx2")
ifls_probe_kernel_tier(AVX512F "-mavx512f")
